// Engine-runtime equivalence suite (DESIGN.md "Engine runtime").
//
// Two guarantees pin the core::EngineRuntime refactor:
//
//  1. No-fault equivalence: with no FaultPlan attached, every virtual-time
//     engine (MPDT fixed + adaptive, MARLIN, detect-only, continuous,
//     offload) produces a RunResult byte-identical to pre-refactor main.
//     The golden digests below were captured on main immediately before
//     the engines were rebased onto the shared runtime; they hash every
//     observable field (frames, boxes, cycles, energy rails, timeline,
//     frame-store counters), so any drift in scheduling, RNG consumption
//     order, or energy integration shows up as a digest change. The
//     constants are tied to this repo's pinned toolchain (bit-exact fp
//     paths only; never build the suite with ADAVP_NATIVE/-ffast-math).
//
//  2. Fault determinism: a seeded fault-injected run (detector + camera +
//     tracker channels) replays bit-identically across repeats and across
//     vision-kernel thread counts, on MPDT and on a baseline.

#include <gtest/gtest.h>

#include <cstring>

#include "core/baselines.h"
#include "core/mpdt_pipeline.h"
#include "core/offload.h"
#include "core/training.h"
#include "run_result_digest.h"
#include "util/fault_plan.h"

namespace adavp::core {
namespace {

// The canonical FNV-1a digest lives in run_result_digest.h, shared with
// test_graph.cpp (which compares graph-backed vs legacy-loop backends).
// Note the engines honor ADAVP_GRAPH_ENGINES: CI runs this suite once per
// backend, so the goldens below guard graph-vs-legacy byte-identity too.

video::SceneConfig equivalence_scene() {
  video::SceneConfig cfg;
  cfg.name = "equivalence";
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = 150;
  cfg.seed = 2026;
  cfg.initial_objects = 4;
  cfg.max_objects = 6;
  cfg.speed_mean = 1.4;
  cfg.camera_pan = 0.6;
  return cfg;
}

constexpr std::uint64_t kSeed = 421;

// Golden digests captured on pre-refactor main (commit d3e9c35) with the
// scene/seed above. See the file header for what they pin.
constexpr std::uint64_t kGoldenMpdtFixed = 0x0975398FE96C514AULL;
constexpr std::uint64_t kGoldenAdaVp = 0xEB93E1EA8F64D435ULL;
constexpr std::uint64_t kGoldenMarlin = 0x8E0E0AB885F98675ULL;
constexpr std::uint64_t kGoldenDetectOnly = 0xBC80F62B1DCAE23AULL;
constexpr std::uint64_t kGoldenContinuous = 0x024819104023FCA6ULL;
constexpr std::uint64_t kGoldenOffload = 0x7737814F9586AFAEULL;

TEST(EngineEquivalence, MpdtFixedMatchesPreRefactorMain) {
  const video::SyntheticVideo video(equivalence_scene());
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_512;
  options.seed = kSeed;
  const RunResult run = run_mpdt(video, options);
  EXPECT_EQ(digest_run(run), kGoldenMpdtFixed)
      << "digest 0x" << std::hex << digest_run(run);
}

TEST(EngineEquivalence, AdaVpMatchesPreRefactorMain) {
  const video::SyntheticVideo video(equivalence_scene());
  const adapt::ModelAdapter adapter = pretrained_adapter();
  MpdtOptions options;
  options.adapter = &adapter;
  options.seed = kSeed;
  const RunResult run = run_mpdt(video, options);
  EXPECT_EQ(digest_run(run), kGoldenAdaVp)
      << "digest 0x" << std::hex << digest_run(run);
}

TEST(EngineEquivalence, MarlinMatchesPreRefactorMain) {
  const video::SyntheticVideo video(equivalence_scene());
  MarlinOptions options;
  options.seed = kSeed;
  const RunResult run = run_marlin(video, options);
  EXPECT_EQ(digest_run(run), kGoldenMarlin)
      << "digest 0x" << std::hex << digest_run(run);
}

TEST(EngineEquivalence, DetectOnlyMatchesPreRefactorMain) {
  const video::SyntheticVideo video(equivalence_scene());
  DetectOnlyOptions options;
  options.seed = kSeed;
  const RunResult run = run_detect_only(video, options);
  EXPECT_EQ(digest_run(run), kGoldenDetectOnly)
      << "digest 0x" << std::hex << digest_run(run);
}

TEST(EngineEquivalence, ContinuousMatchesPreRefactorMain) {
  const video::SyntheticVideo video(equivalence_scene());
  DetectOnlyOptions options;
  options.seed = kSeed;
  const RunResult run = run_continuous(video, options);
  EXPECT_EQ(digest_run(run), kGoldenContinuous)
      << "digest 0x" << std::hex << digest_run(run);
}

TEST(EngineEquivalence, OffloadMatchesPreRefactorMain) {
  const video::SyntheticVideo video(equivalence_scene());
  OffloadOptions options;
  options.seed = kSeed;
  const RunResult run = run_offload(video, options);
  EXPECT_EQ(digest_run(run), kGoldenOffload)
      << "digest 0x" << std::hex << digest_run(run);
}

TEST(EngineEquivalence, NoFaultPlanMeansOkStatusAndZeroFaults) {
  const video::SyntheticVideo video(equivalence_scene());
  MpdtOptions options;
  options.seed = kSeed;
  const RunResult run = run_mpdt(video, options);
  EXPECT_TRUE(run.status.ok()) << run.status.to_string();
  EXPECT_EQ(run.faults_injected, 0u);
}

// --- Fault determinism (guarantee 2) -------------------------------------

// All three channels at once: detector latency inflation + a garbage
// payload, camera pixel glitches + a capture hiccup, and tracker
// starvation / divergence / NaN-flow. `every=9` fires at frame 0 too, so
// at least one fault is guaranteed on every engine.
constexpr const char* kChaosSpec =
    "detector: latency every=9 x=2.5; garbage at=40 n=4 | "
    "camera: black at=25; corrupt every=47 amp=90; hiccup every=31 ms=45 | "
    "tracker: starve every=17 frac=0.4; diverge at=33 px=6; nan at=57";

util::FaultPlan chaos_plan() {
  std::string error;
  const auto plan = util::FaultPlan::parse(kChaosSpec, 9, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return *plan;
}

TEST(EngineFaults, MpdtFaultReplayIsBitIdenticalAcrossRepeats) {
  const video::SyntheticVideo video(equivalence_scene());
  const util::FaultPlan plan = chaos_plan();
  MpdtOptions options;
  options.seed = kSeed;
  options.fault_plan = &plan;
  const RunResult a = run_mpdt(video, options);
  const RunResult b = run_mpdt(video, options);
  EXPECT_EQ(digest_run(a), digest_run(b));
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.status.code(), util::StatusCode::kDegraded)
      << a.status.to_string();
  // And the injected faults really changed the run.
  MpdtOptions clean = options;
  clean.fault_plan = nullptr;
  EXPECT_NE(digest_run(a), digest_run(run_mpdt(video, clean)));
}

TEST(EngineFaults, MpdtFaultReplayIsBitIdenticalAcrossKernelThreadCounts) {
  const video::SyntheticVideo video(equivalence_scene());
  const util::FaultPlan plan = chaos_plan();
  MpdtOptions options;
  options.seed = kSeed;
  options.fault_plan = &plan;
  options.tracker.kernels.num_threads = 1;
  const RunResult serial = run_mpdt(video, options);
  options.tracker.kernels.num_threads = 3;
  const RunResult parallel = run_mpdt(video, options);
  EXPECT_EQ(digest_run(serial), digest_run(parallel));
  EXPECT_EQ(serial.faults_injected, parallel.faults_injected);
}

TEST(EngineFaults, MarlinAcceptsTheSamePlanAndReplaysBitIdentically) {
  const video::SyntheticVideo video(equivalence_scene());
  const util::FaultPlan plan = chaos_plan();
  MarlinOptions options;
  options.seed = kSeed;
  options.fault_plan = &plan;
  const RunResult a = run_marlin(video, options);
  const RunResult b = run_marlin(video, options);
  EXPECT_EQ(digest_run(a), digest_run(b));
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.status.code(), util::StatusCode::kDegraded)
      << a.status.to_string();
}

TEST(EngineFaults, InjectedThrowBecomesWorkerFailureNotAnAbort) {
  const video::SyntheticVideo video(equivalence_scene());
  const auto plan = util::FaultPlan::parse("detector: throw every=1", 9);
  ASSERT_TRUE(plan.has_value());
  MpdtOptions options;
  options.seed = kSeed;
  options.fault_plan = &*plan;
  const RunResult run = run_mpdt(video, options);
  EXPECT_EQ(run.status.code(), util::StatusCode::kWorkerFailure);
  EXPECT_TRUE(run.status.failed());
  EXPECT_NE(run.status.message().find("mpdt engine"), std::string::npos)
      << run.status.message();
  // The partial result is still well-formed.
  EXPECT_EQ(run.frames.size(), static_cast<std::size_t>(video.frame_count()));
}

TEST(EngineFaults, OffloadCodecPathRunsAndReportsStatus) {
  const video::SyntheticVideo video(equivalence_scene());
  OffloadOptions options;
  options.seed = kSeed;
  options.codec_quality = 60;
  const RunResult real_codec = run_offload(video, options);
  EXPECT_FALSE(real_codec.status.failed()) << real_codec.status.to_string();
  EXPECT_FALSE(real_codec.cycles.empty());
  // Real compressed sizes differ from the flat frame_bytes model, so the
  // transmit times — and hence the whole schedule — must diverge.
  OffloadOptions flat = options;
  flat.codec_quality = 0;
  EXPECT_NE(digest_run(real_codec), digest_run(run_offload(video, flat)));
  // And the codec path replays deterministically too.
  EXPECT_EQ(digest_run(real_codec), digest_run(run_offload(video, options)));
}

}  // namespace
}  // namespace adavp::core
