#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <regex>
#include <thread>
#include <vector>

#include "util/args.h"
#include "util/closable_queue.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_id.h"

namespace adavp::util {
namespace {

// ------------------------------------------------------------ threads ----

TEST(ThreadId, StablePerThreadAndUniqueAcrossThreads) {
  const std::uint32_t mine = compact_thread_id();
  EXPECT_EQ(compact_thread_id(), mine);  // stable on repeat calls
  std::uint32_t other = 0;
  std::thread worker([&] { other = compact_thread_id(); });
  worker.join();
  EXPECT_NE(other, 0u);
  EXPECT_NE(other, mine);
}

TEST(ThreadId, ThreadTagPrefersName) {
  std::string tag_before;
  std::string tag_after;
  std::thread worker([&] {
    tag_before = thread_tag();
    set_thread_name("worker-thread");
    tag_after = thread_tag();
    set_thread_name("");
  });
  worker.join();
  EXPECT_NE(tag_before, "worker-thread");  // numeric before naming
  EXPECT_EQ(tag_after, "worker-thread");
}

// ------------------------------------------------------------ logging ----

TEST(Logging, WallClockFormat) {
  const std::string ts = format_wall_clock_now();
  EXPECT_TRUE(std::regex_match(
      ts, std::regex(R"(\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3})")))
      << ts;
}

TEST(Logging, FileSinkMirrorsFormattedLines) {
  const std::string path = ::testing::TempDir() + "adavp_log_sink.txt";
  std::remove(path.c_str());
  set_log_file(path);
  ADAVP_LOG_INFO << "hello from the sink";
  close_log_file();

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // `[LEVEL] [ts] [tid] msg` with a wall-clock timestamp and a thread tag.
  EXPECT_TRUE(std::regex_match(
      line,
      std::regex(
          R"(\[INFO\] \[\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2}\.\d{3}\] \[[^\]]+\] hello from the sink)")))
      << line;
  std::remove(path.c_str());
}

TEST(Logging, LevelFilterDropsBelowMinimum) {
  const std::string path = ::testing::TempDir() + "adavp_log_filter.txt";
  std::remove(path.c_str());
  set_log_file(path);
  set_log_level(LogLevel::kError);
  ADAVP_LOG_INFO << "filtered out";
  ADAVP_LOG_ERROR << "kept";
  set_log_level(LogLevel::kInfo);
  close_log_file();

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("kept"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Rng ----

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.06);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.06);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(77);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

// -------------------------------------------------------------- Stats ----

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 3 + i * 0.01;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Percentile, MedianOfOddCount) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, ClampsQueryRange) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 200.0), 3.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Cdf, StepStructure) {
  const std::vector<double> xs = {1.0, 1.0, 2.0, 3.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative, 0.5);
  EXPECT_DOUBLE_EQ(cdf[1].cumulative, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative, 1.0);
}

TEST(Cdf, EmptyInput) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.5);
}

// ---------------------------------------------------------------- Csv ----

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/adavp_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.header({"a", "b"});
    csv.row(std::vector<std::string>{"1", "x,y"});
    csv.row(std::vector<double>{2.5, 3.0});
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2.5,3");
  std::remove(path.c_str());
}

// -------------------------------------------------------------- Table ----

TEST(TableTest, AlignsColumns) {
  Table table({"name", "v"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22 |"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TableTest, PadsMissingCells) {
  Table table({"a", "b", "c"});
  table.add_row({"1"});
  EXPECT_NE(table.to_string().find("| 1 |   |   |"), std::string::npos);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.439, 1), "43.9%");
}

// --------------------------------------------------------------- Args ----

TEST(ArgsTest, ParsesAllForms) {
  // Note: a bare "--flag" consumes the following token as its value, so
  // positionals must precede flags (documented Args behaviour).
  const char* argv[] = {"prog", "pos1", "--alpha=0.7", "--frames", "300",
                        "--verbose"};
  Args args(6, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.7);
  EXPECT_EQ(args.get_int("frames", 0), 300);
  EXPECT_TRUE(args.get_bool("verbose", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(ArgsTest, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get("x", "def"), "def");
  EXPECT_EQ(args.get_int("x", 5), 5);
  EXPECT_FALSE(args.get_bool("x", false));
}

TEST(ArgsTest, ExplicitFalse) {
  const char* argv[] = {"prog", "--flag=false"};
  Args args(2, argv);
  EXPECT_FALSE(args.get_bool("flag", true));
}

// ----------------------------------------------------- ClosableQueue ----

TEST(ClosableQueue, DeliversInFifoOrder) {
  ClosableQueue<int> queue;
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(ClosableQueue, DrainsQueuedItemsAfterCloseThenStops) {
  ClosableQueue<int> queue;
  queue.push(7);
  queue.push(8);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.pop(), 7);  // drain-then-stop: nothing already queued is lost
  EXPECT_EQ(queue.pop(), 8);
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());  // and it stays that way
}

TEST(ClosableQueue, PushAfterCloseDropsAndReportsIt) {
  ClosableQueue<int> queue;
  queue.close();
  queue.close();  // idempotent
  EXPECT_FALSE(queue.push(5));
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(ClosableQueue, CloseWakesABlockedPop) {
  ClosableQueue<int> queue;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_FALSE(queue.pop().has_value());
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());  // genuinely parked in pop
  queue.close();
  waiter.join();  // hangs here if close() lost the wakeup
  EXPECT_TRUE(woke.load());
}

TEST(ClosableQueue, ProducerConsumerHandoffUnderThreads) {
  ClosableQueue<int> queue;
  constexpr int kItems = 200;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) EXPECT_TRUE(queue.push(i));
    queue.close();
  });
  int received = 0;
  int last = -1;
  while (const auto item = queue.pop()) {
    EXPECT_EQ(*item, last + 1);  // FIFO preserved across the handoff
    last = *item;
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
}

// Fleet-era MPMC audit (see the class comment in closable_queue.h): with N
// producers and M consumers sharing one queue, every pushed item must be
// delivered exactly once, notify_one per push notwithstanding — all poppers
// share the same predicate, so no wakeup can be swallowed by a waiter that
// then refuses the item. Run under TSan by the concurrency CI job.
TEST(ClosableQueue, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  ClosableQueue<int> queue;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.pop()) {
        seen[static_cast<std::size_t>(*item)].fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();  // drain-then-stop: consumers still get the queued tail
  for (auto& t : consumers) t.join();

  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace adavp::util
