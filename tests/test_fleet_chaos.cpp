// Fleet chaos soak (ISSUE.md satellite 3, labels "concurrency;soak;chaos"):
// a supervised fleet under combined gpu: and stream: fault channels must
// (a) never deadlock (the run completing proves it), (b) finish kDegraded —
// never kWorkerFailure — with the crashed stream quarantined, backed off,
// and re-admitted within the run, (c) replay bit-identically, and (d) leave
// every healthy stream digest-identical to an all-healthy fleet.
//
// The digest-isolation claim leans on two structural properties:
//   * the recovery lane — FleetGpu bills hang/retry time to the victim's
//     completion but advances gpu_free by the un-faulted service only, so
//     the shared schedule is fault-independent; and
//   * slot quantization — the supervisor resumes a disturbed stream on its
//     own cadence lattice (quantize_up), so its requests never drift into a
//     neighbor's batch window.
// The fleet here is laid out as TDMA to make the isolation provable: with
// cadence = 18 frame intervals and stagger = 3 intervals, each stream owns
// a distinct phase class mod the cadence and the ~55 ms tiny-model service
// never reaches the next slot 100 ms away, so every dispatch is solo.

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/fleet.h"
#include "obs/telemetry.h"
#include "util/fault_plan.h"

namespace adavp::core {
namespace {

class Digest {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  template <typename T>
  void pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&value, sizeof(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

std::uint64_t digest_run(const RunResult& run) {
  Digest d;
  d.pod<std::uint64_t>(run.frames.size());
  for (const FrameResult& f : run.frames) {
    d.pod<std::int32_t>(f.frame_index);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.source));
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.setting));
    d.pod<double>(f.staleness_ms);
    d.pod<std::uint64_t>(f.boxes.size());
    for (const metrics::LabeledBox& b : f.boxes) {
      d.pod<float>(b.box.left);
      d.pod<float>(b.box.top);
      d.pod<float>(b.box.width);
      d.pod<float>(b.box.height);
      d.pod<std::uint8_t>(static_cast<std::uint8_t>(b.cls));
    }
  }
  d.pod<std::uint64_t>(run.cycles.size());
  for (const CycleRecord& c : run.cycles) {
    d.pod<std::int32_t>(c.detected_frame);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(c.setting));
    d.pod<double>(c.start_ms);
    d.pod<double>(c.end_ms);
    d.pod<std::int32_t>(c.frames_in_buffer);
    d.pod<std::int32_t>(c.frames_tracked);
    d.pod<double>(c.mean_velocity);
  }
  d.pod<double>(run.energy.gpu_wh);
  d.pod<double>(run.energy.cpu_wh);
  d.pod<double>(run.timeline_ms);
  return d.value();
}

constexpr int kStreams = 6;
constexpr int kFrames = 300;
constexpr int kCrashed = 2;  ///< the stream carrying the stream: crash rule
constexpr double kInterval = 1000.0 / 30.0;  ///< capture interval at 30 fps

std::vector<FleetStreamOptions> chaos_fleet(const util::FaultPlan* crash) {
  std::vector<FleetStreamOptions> streams(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    auto& s = streams[static_cast<std::size_t>(i)];
    s.scene.width = 128;
    s.scene.height = 96;
    s.scene.frame_count = kFrames;
    s.scene.initial_objects = 3;
    s.scene.max_objects = 4;
    s.scene.seed = static_cast<std::uint64_t>(400 + i);
    s.engine.seed = static_cast<std::uint64_t>(9100 + i);
    s.setting = detect::ModelSetting::kYolov3Tiny_320;
    s.cadence_ms = 18.0 * kInterval;  // 600 ms: detections on the lattice
    s.deadline_ms = 900.0;
  }
  if (crash != nullptr) {
    streams[kCrashed].engine.fault_plan = crash;
  }
  return streams;
}

FleetOptions chaos_options(const util::FaultPlan* gpu_plan, bool supervised) {
  FleetOptions options;
  options.gpu.max_batch = 4;
  options.stagger_ms = 3.0 * kInterval;  // 100 ms slots: TDMA, solo batches
  options.supervisor.enabled = supervised;
  options.fault_plan = gpu_plan;
  return options;
}

util::FaultPlan crash_plan() {
  // One deterministic mid-run crash (frame 60, ~2 s in), plus a wedge so
  // the stream: channel's non-fatal kind is exercised too.
  const auto plan =
      util::FaultPlan::parse("stream: crash at=60; wedge at=130 ms=20", 0xC0A5);
  EXPECT_TRUE(plan.has_value());
  return plan.value_or(util::FaultPlan{});
}

util::FaultPlan gpu_plan() {
  // ~1.5% of dispatches hang once (the watchdog cancels and the retry
  // lands). This seed fires exactly twice across the run's ~100
  // dispatches — enough to prove the arc while leaving most of the fleet
  // untouched for the digest-isolation half of the test.
  const auto plan = util::FaultPlan::parse("gpu: hang p=0.015", 0xBEE5);
  EXPECT_TRUE(plan.has_value());
  return plan.value_or(util::FaultPlan{});
}

bool is_victim(const FleetStreamResult& s) {
  const StreamSupervisionStats& sv = s.supervision;
  return sv.crashes > 0 || sv.stream_faults > 0 || sv.gpu_retries > 0 ||
         sv.gpu_failures > 0 || s.run.faults_injected > 0;
}

TEST(FleetChaos, SupervisedFleetSurvivesGpuAndStreamFaultsDeterministically) {
  const util::FaultPlan crash = crash_plan();
  const util::FaultPlan gpu = gpu_plan();

  const FleetResult chaos =
      run_fleet(chaos_fleet(&crash), chaos_options(&gpu, true));
  const FleetResult repeat =
      run_fleet(chaos_fleet(&crash), chaos_options(&gpu, true));
  const FleetResult healthy =
      run_fleet(chaos_fleet(nullptr), chaos_options(nullptr, true));
  const FleetResult unsupervised =
      run_fleet(chaos_fleet(nullptr), chaos_options(nullptr, false));

  ASSERT_EQ(chaos.streams.size(), static_cast<std::size_t>(kStreams));

  // (b) the fleet finished degraded, not dead: the crash was contained.
  EXPECT_EQ(chaos.status.code(), StatusCode::kDegraded)
      << chaos.status.to_string();
  EXPECT_FALSE(chaos.status.failed());

  // The gpu: channel actually fired and the watchdog retried.
  EXPECT_GE(chaos.gpu.hangs, 1u);
  EXPECT_GE(chaos.gpu.retries, 1u);
  EXPECT_EQ(chaos.gpu.failed_dispatches, 0u);  // hang != wedge: retries land
  EXPECT_GT(chaos.gpu.recovery_ms, 0.0);

  // The crashed stream went through the full supervision arc within the
  // run: quarantine -> backoff -> probe -> re-admission -> completion.
  const FleetStreamResult& crashed =
      chaos.streams[static_cast<std::size_t>(kCrashed)];
  const StreamSupervisionStats& sv = crashed.supervision;
  EXPECT_GE(sv.crashes, 1);
  EXPECT_GE(sv.restarts, 1);
  EXPECT_GE(sv.quarantines, 1);
  EXPECT_GE(sv.probes, 1);
  EXPECT_GE(sv.stream_faults, 2);  // the crash and the wedge both counted
  EXPECT_GT(sv.backoff_total_ms, 0.0);
  EXPECT_GE(sv.first_quarantined_at_ms, 0.0);
  EXPECT_GT(sv.readmitted_at_ms, sv.first_quarantined_at_ms);
  EXPECT_FALSE(sv.gave_up);
  EXPECT_EQ(crashed.run.status.code(), StatusCode::kDegraded)
      << crashed.run.status.to_string();
  EXPECT_EQ(crashed.run.frames.size(), static_cast<std::size_t>(kFrames));
  EXPECT_GE(chaos.quarantined, 1);
  EXPECT_GE(chaos.readmitted, 1);

  int healthy_streams = 0;
  for (int i = 0; i < kStreams; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const FleetStreamResult& s = chaos.streams[idx];
    // (a)+(c): every stream finished every frame, bit-identically across
    // repeats — faults, recoveries, and backoff jitter included.
    ASSERT_EQ(s.run.frames.size(), static_cast<std::size_t>(kFrames))
        << s.name;
    EXPECT_EQ(digest_run(s.run), digest_run(repeat.streams[idx].run))
        << s.name;
    EXPECT_EQ(s.supervision.crashes, repeat.streams[idx].supervision.crashes)
        << s.name;
    EXPECT_EQ(s.supervision.gpu_retries,
              repeat.streams[idx].supervision.gpu_retries)
        << s.name;
    // A supervised all-healthy fleet is byte-identical to the unsupervised
    // fleet: supervision must be free when nothing goes wrong.
    EXPECT_EQ(digest_run(healthy.streams[idx].run),
              digest_run(unsupervised.streams[idx].run))
        << s.name;
    if (is_victim(s)) continue;
    ++healthy_streams;
    // (d) a healthy stream cannot tell its neighbors crashed or hung:
    // recovery-lane billing plus slot quantization keep its entire
    // observable run identical to the all-healthy fleet.
    EXPECT_TRUE(s.run.status.ok()) << s.run.status.to_string();
    EXPECT_EQ(digest_run(s.run), digest_run(healthy.streams[idx].run))
        << s.name;
  }
  EXPECT_TRUE(is_victim(crashed));
  EXPECT_GE(healthy_streams, 2);
}

TEST(FleetChaos, SupervisionTelemetryRecordsTheRecoveryArc) {
  obs::Telemetry::set_enabled(true);
  obs::Telemetry::instance().reset();
  const util::FaultPlan crash = crash_plan();
  const util::FaultPlan gpu = gpu_plan();
  const FleetResult chaos =
      run_fleet(chaos_fleet(&crash), chaos_options(&gpu, true));
  const obs::MetricsSnapshot snap = obs::Telemetry::instance().snapshot();
  // Fleet-level supervisor series: one backoff sample per contained crash.
  const std::uint64_t backoffs =
      obs::time_series()
          .series("supervisor", "backoff_ms",
                  {1000.0, 64, obs::FixedHistogram::default_latency_edges_ms()})
          .total_count();
  obs::Telemetry::set_enabled(false);

  ASSERT_FALSE(chaos.status.failed());
  // Per-stream supervision counters land under the stream's label...
  const std::string prefix = "fleet.stream" + std::to_string(kCrashed) + ".";
  EXPECT_GE(snap.counter(prefix + "stream.quarantined"), 1u);
  EXPECT_GE(snap.counter(prefix + "stream.restarts"), 1u);
  EXPECT_GE(snap.counter(prefix + "stream.readmissions"), 1u);
  EXPECT_GE(snap.counter(prefix + "stream.faults_injected"), 2u);
  // ...the shared-GPU watchdog counters under the unprefixed fleet key.
  EXPECT_GE(snap.counter("fleet.gpu.hangs"), 1u);
  EXPECT_GE(snap.counter("fleet.gpu.retries"), 1u);
  EXPECT_GE(backoffs, static_cast<std::uint64_t>(
                          chaos.streams[kCrashed].supervision.crashes));
}

TEST(FleetChaos, RejectedStreamJoinsMidRunWhenCapacityFrees) {
  // Two YOLOv3-608 streams at 600 ms cadence want 0.83 duty each against a
  // ~1.38 budget: static admission (degradation disabled) seats the first
  // and rejects the second. Under supervision the rejected stream parks on
  // re-admission probes; when the short first stream ends and returns its
  // duty to the ledger, a probe is granted and the stream joins mid-run.
  std::vector<FleetStreamOptions> streams(2);
  for (int i = 0; i < 2; ++i) {
    auto& s = streams[static_cast<std::size_t>(i)];
    s.scene.width = 128;
    s.scene.height = 96;
    s.scene.initial_objects = 3;
    s.scene.max_objects = 4;
    s.scene.seed = static_cast<std::uint64_t>(500 + i);
    s.engine.seed = static_cast<std::uint64_t>(7300 + i);
    s.setting = detect::ModelSetting::kYolov3_608;
    s.cadence_ms = 600.0;
    s.deadline_ms = 1200.0;
  }
  streams[0].scene.frame_count = 60;   // ends ~2 s in, freeing its duty
  streams[1].scene.frame_count = 150;  // 5 s: plenty left after joining

  FleetOptions options;
  options.gpu.max_batch = 4;
  options.admission.allow_degrade = false;
  options.supervisor.enabled = true;
  const FleetResult fleet = run_fleet(streams, options);
  const FleetResult repeat = run_fleet(streams, options);

  EXPECT_EQ(fleet.admitted, 1);
  EXPECT_EQ(fleet.rejected, 1);
  EXPECT_EQ(fleet.readmitted, 1);
  const FleetStreamResult& late = fleet.streams[1];
  EXPECT_EQ(late.admission, AdmissionDecision::kRejected);
  EXPECT_GE(late.supervision.probes, 1);
  EXPECT_GT(late.supervision.readmitted_at_ms, 0.0);
  EXPECT_FALSE(late.supervision.gave_up);
  EXPECT_TRUE(late.run.status.ok()) << late.run.status.to_string();
  ASSERT_EQ(late.run.frames.size(), 150u);
  // It joined mid-video: the tail has live results, the missed head stays
  // unserved (kNone) — late admission is not time travel.
  EXPECT_NE(late.run.frames.back().source, ResultSource::kNone);
  EXPECT_EQ(late.run.frames.front().source, ResultSource::kNone);
  EXPECT_GT(fleet.gpu.probes, 0u);
  EXPECT_GE(fleet.gpu.probe_grants, 1u);
  for (std::size_t i = 0; i < fleet.streams.size(); ++i) {
    EXPECT_EQ(digest_run(fleet.streams[i].run),
              digest_run(repeat.streams[i].run));
  }
}

}  // namespace
}  // namespace adavp::core
