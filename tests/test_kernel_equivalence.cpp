// Parallel-vs-serial equivalence of the vision kernel engine.
//
// Every kernel on the tracking hot path is row- or point-parallel with no
// cross-chunk reductions, so `num_threads = 1` and `num_threads = 4` must
// produce bit-identical images, flow vectors, and tracker boxes. These
// tests pin that invariant (and the fused downsample2 against a literal
// transcription of the historical smooth3-then-decimate formulation) so a
// future kernel change that breaks reproducibility fails loudly.

#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "detect/detection.h"
#include "track/tracker.h"
#include "video/scene.h"
#include "vision/good_features.h"
#include "vision/image_ops.h"
#include "vision/optical_flow.h"
#include "vision/pyramid.h"
#include "vision/simd/dispatch.h"

namespace adavp::vision {
namespace {

KernelConfig serial() { return {.num_threads = 1}; }
KernelConfig parallel4() {
  // Force splitting even on the small test images: four threads, tiny
  // grains, so chunk boundaries land in the middle of rows/points.
  KernelConfig cfg;
  cfg.num_threads = 4;
  cfg.min_rows_per_task = 4;
  cfg.min_points_per_task = 1;
  return cfg;
}

ImageU8 test_frame(int w, int h, std::uint32_t seed) {
  ImageU8 img(w, h);
  std::uint32_t s = seed;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      s = s * 1664525u + 1013904223u;
      img.at(x, y) = static_cast<std::uint8_t>(
          (x * 5 + y * 3 + static_cast<int>((s >> 24) & 63)) % 256);
    }
  }
  return img;
}

template <typename T>
void expect_identical(const Image<T>& a, const Image<T>& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  // operator== on the pixel vectors is an exact byte comparison.
  EXPECT_TRUE(a.pixels() == b.pixels());
}

TEST(KernelEquivalence, RowParallelKernelsAreBitExact) {
  // Odd dimensions on one of the images exercise the clamped border taps.
  for (const auto& frame : {test_frame(128, 96, 1), test_frame(131, 77, 2)}) {
    const ImageF32 fs = to_float(frame, serial());
    const ImageF32 fp = to_float(frame, parallel4());
    expect_identical(fs, fp);

    expect_identical(smooth3(fs, serial()), smooth3(fs, parallel4()));
    expect_identical(smooth5(fs, serial()), smooth5(fs, parallel4()));
    expect_identical(downsample2(fs, serial()), downsample2(fs, parallel4()));

    ImageF32 gxs, gys, gxp, gyp;
    sobel(fs, gxs, gys, serial());
    sobel(fs, gxp, gyp, parallel4());
    expect_identical(gxs, gxp);
    expect_identical(gys, gyp);

    expect_identical(min_eigenvalue_map(fs, 3, serial()),
                     min_eigenvalue_map(fs, 3, parallel4()));
  }
}

/// Literal transcription of the pre-engine downsample2 (full smooth3 pass,
/// then 2x2 mean) — the reference the fused kernel must match bit for bit.
ImageF32 reference_downsample2(const ImageF32& img) {
  if (img.width() < 2 || img.height() < 2) return img;
  const ImageF32 smoothed = smooth3(img, KernelConfig{.num_threads = 1});
  const int w = (img.width() + 1) / 2;
  const int h = (img.height() + 1) / 2;
  ImageF32 out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int sx = 2 * x;
      const int sy = 2 * y;
      const float sum = smoothed.at_clamped(sx, sy) +
                        smoothed.at_clamped(sx + 1, sy) +
                        smoothed.at_clamped(sx, sy + 1) +
                        smoothed.at_clamped(sx + 1, sy + 1);
      out.at(x, y) = sum / 4.0f;
    }
  }
  return out;
}

TEST(KernelEquivalence, FusedDownsampleMatchesUnfusedReference) {
  const std::pair<int, int> sizes[] = {{128, 96}, {131, 77}, {33, 34}, {2, 2}};
  for (const auto& [w, h] : sizes) {
    const ImageF32 img = to_float(test_frame(w, h, 7u));
    expect_identical(reference_downsample2(img), downsample2(img, serial()));
    expect_identical(reference_downsample2(img), downsample2(img, parallel4()));
  }
}

TEST(KernelEquivalence, PyramidAndFlowAreBitExactAcrossThreadCounts) {
  const ImageU8 a = test_frame(160, 120, 11);
  ImageU8 b = test_frame(160, 120, 11);
  // Shift a patch so the flow has something to chase.
  for (int y = 20; y < 60; ++y) {
    for (int x = 20; x < 60; ++x) {
      b.at(x + 3, y + 2) = a.at(x, y);
    }
  }
  const ImagePyramid pas(a, 3, 16, serial());
  const ImagePyramid pap(a, 3, 16, parallel4());
  ASSERT_EQ(pas.levels(), pap.levels());
  for (int l = 0; l < pas.levels(); ++l) {
    expect_identical(pas.level(l), pap.level(l));
  }

  const ImagePyramid pbs(b, 3, 16, serial());
  std::vector<geometry::Point2f> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({6.0f + static_cast<float>(i % 6) * 28.0f,
                   8.0f + static_cast<float>(i / 6) * 22.0f});
  }
  pts.push_back({0.5f, 0.5f});       // border window: clamped path
  pts.push_back({158.5f, 118.5f});   // border window: clamped path

  std::vector<geometry::Point2f> out_s, out_p;
  std::vector<FlowStatus> st_s, st_p;
  calc_optical_flow_pyr_lk(pas, pbs, pts, out_s, st_s, {}, serial());
  calc_optical_flow_pyr_lk(pas, pbs, pts, out_p, st_p, {}, parallel4());
  ASSERT_EQ(out_s.size(), out_p.size());
  for (std::size_t i = 0; i < out_s.size(); ++i) {
    EXPECT_EQ(out_s[i].x, out_p[i].x) << "point " << i;
    EXPECT_EQ(out_s[i].y, out_p[i].y) << "point " << i;
    EXPECT_EQ(st_s[i].tracked, st_p[i].tracked) << "point " << i;
    EXPECT_EQ(st_s[i].error, st_p[i].error) << "point " << i;
  }
}

TEST(KernelEquivalence, TrackerOutputsAreIdenticalSerialVsParallel) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = 24;
  cfg.seed = 3;
  cfg.initial_objects = 3;
  cfg.max_objects = 4;
  cfg.speed_mean = 1.2;
  cfg.speed_jitter = 0.05;
  const video::SyntheticVideo video(cfg);

  auto run = [&](const KernelConfig& kernels) {
    track::TrackerParams params;
    params.kernels = kernels;
    track::ObjectTracker tracker(params);
    std::vector<detect::Detection> dets;
    for (const auto& gt : video.ground_truth(0)) {
      dets.push_back({gt.box, gt.cls, 1.0f});
    }
    tracker.set_reference(video.render(0), dets);
    std::vector<metrics::LabeledBox> boxes;
    for (int f = 1; f < cfg.frame_count; ++f) {
      tracker.track_to(video.render(f), 1);
      for (const auto& lb : tracker.current_boxes()) boxes.push_back(lb);
    }
    return boxes;
  };

  const auto serial_boxes = run(serial());
  const auto parallel_boxes = run(parallel4());
  ASSERT_EQ(serial_boxes.size(), parallel_boxes.size());
  for (std::size_t i = 0; i < serial_boxes.size(); ++i) {
    EXPECT_EQ(serial_boxes[i].box.left, parallel_boxes[i].box.left);
    EXPECT_EQ(serial_boxes[i].box.top, parallel_boxes[i].box.top);
    EXPECT_EQ(serial_boxes[i].box.width, parallel_boxes[i].box.width);
    EXPECT_EQ(serial_boxes[i].box.height, parallel_boxes[i].box.height);
    EXPECT_EQ(serial_boxes[i].cls, parallel_boxes[i].cls);
  }
}

// ------------------------------------------------------- ISA matrix ----
//
// The SIMD tiers (DESIGN.md §14) promise bit-exactness with the scalar
// reference, per ISA, per thread count, including every border/tail case:
// odd widths, images narrower than one vector, windows straddling the
// interior/clamped split. Tiers the host CPU (or the build) lacks are
// skipped with a logged notice rather than failed, so the same test binary
// is meaningful on any x86 or non-x86 machine.

KernelConfig with_isa(KernelConfig base, simd::Isa isa) {
  base.isa = isa;
  return base;
}

/// True when forcing `isa` actually runs that tier (the dispatcher clamps
/// unsupported requests down, which would make the comparison vacuous).
bool tier_available(simd::Isa isa) {
  return simd::ops_for_isa(isa).isa == isa;
}

const simd::Isa kSimdTiers[] = {simd::Isa::kSse2, simd::Isa::kAvx2};

TEST(KernelIsaMatrix, RowKernelsMatchScalarBitForBit) {
  // Widths chosen to hit: multiple full vectors + tail (131), exactly the
  // SSE2 width (4), below every vector width (3), and a single column (1).
  const std::pair<int, int> sizes[] = {
      {128, 96}, {131, 77}, {33, 34}, {9, 31}, {4, 6}, {3, 3}, {1, 5}};
  for (const simd::Isa isa : kSimdTiers) {
    if (!tier_available(isa)) {
      std::cout << "[ NOTICE  ] tier " << simd::isa_name(isa)
                << " unavailable on this host/build; skipping\n";
      continue;
    }
    for (const KernelConfig& threads : {serial(), parallel4()}) {
      const KernelConfig ref = with_isa(serial(), simd::Isa::kScalar);
      const KernelConfig tier = with_isa(threads, isa);
      for (const auto& [w, h] : sizes) {
        SCOPED_TRACE(std::string(simd::isa_name(isa)) + " " +
                     std::to_string(threads.num_threads) + "t " +
                     std::to_string(w) + "x" + std::to_string(h));
        const ImageF32 img = to_float(test_frame(w, h, 5u));
        expect_identical(smooth3(img, ref), smooth3(img, tier));
        expect_identical(smooth5(img, ref), smooth5(img, tier));
        expect_identical(downsample2(img, ref), downsample2(img, tier));

        ImageF32 gxs, gys, gxv, gyv;
        sobel(img, gxs, gys, ref);
        sobel(img, gxv, gyv, tier);
        expect_identical(gxs, gxv);
        expect_identical(gys, gyv);

        expect_identical(min_eigenvalue_map(img, 3, ref),
                         min_eigenvalue_map(img, 3, tier));
      }
    }
  }
}

TEST(KernelIsaMatrix, OpticalFlowMatchesScalarBitForBit) {
  const ImageU8 a = test_frame(160, 120, 31);
  ImageU8 b = test_frame(160, 120, 31);
  for (int y = 30; y < 70; ++y) {
    for (int x = 30; x < 70; ++x) {
      b.at(x + 2, y + 3) = a.at(x, y);
    }
  }
  // Interior grid plus window positions that straddle or cross the image
  // border — those take the clamped path on every tier, the rest exercise
  // the gathered samplers.
  std::vector<geometry::Point2f> pts;
  for (int i = 0; i < 24; ++i) {
    pts.push_back({12.0f + static_cast<float>(i % 6) * 26.0f,
                   14.0f + static_cast<float>(i / 6) * 24.0f});
  }
  pts.push_back({1.0f, 1.0f});
  pts.push_back({158.0f, 2.0f});
  pts.push_back({9.5f, 110.7f});   // near the interior/clamped boundary
  pts.push_back({159.0f, 119.0f});

  // Default radius 7 (unrolled fast path) and 4 (generic-radius path).
  LucasKanadeParams params_list[2];
  params_list[1].window_radius = 4;

  const KernelConfig ref = with_isa(serial(), simd::Isa::kScalar);
  const ImagePyramid pa(a, 3, 16, ref);
  const ImagePyramid pb(b, 3, 16, ref);
  for (const simd::Isa isa : kSimdTiers) {
    if (!tier_available(isa)) {
      std::cout << "[ NOTICE  ] tier " << simd::isa_name(isa)
                << " unavailable on this host/build; skipping\n";
      continue;
    }
    for (const KernelConfig& threads : {serial(), parallel4()}) {
      for (const LucasKanadeParams& params : params_list) {
        SCOPED_TRACE(std::string(simd::isa_name(isa)) + " " +
                     std::to_string(threads.num_threads) + "t r=" +
                     std::to_string(params.window_radius));
        std::vector<geometry::Point2f> out_s, out_v;
        std::vector<FlowStatus> st_s, st_v;
        calc_optical_flow_pyr_lk(pa, pb, pts, out_s, st_s, params, ref);
        calc_optical_flow_pyr_lk(pa, pb, pts, out_v, st_v, params,
                                 with_isa(threads, isa));
        ASSERT_EQ(out_s.size(), out_v.size());
        for (std::size_t i = 0; i < out_s.size(); ++i) {
          EXPECT_EQ(out_s[i].x, out_v[i].x) << "point " << i;
          EXPECT_EQ(out_s[i].y, out_v[i].y) << "point " << i;
          EXPECT_EQ(st_s[i].tracked, st_v[i].tracked) << "point " << i;
          EXPECT_EQ(st_s[i].error, st_v[i].error) << "point " << i;
        }
      }
    }
  }
}

TEST(KernelIsaMatrix, EnvOverrideForcesTierAndAutoRestores) {
  ASSERT_EQ(setenv("ADAVP_FORCE_ISA", "scalar", 1), 0);
  simd::refresh_env_for_testing();
  EXPECT_EQ(simd::resolve_isa(KernelConfig{}), simd::Isa::kScalar);
  // An explicit config.isa outranks the environment.
  EXPECT_EQ(simd::resolve_isa(with_isa(KernelConfig{}, simd::detected_isa())),
            simd::detected_isa());
  ASSERT_EQ(unsetenv("ADAVP_FORCE_ISA"), 0);
  simd::refresh_env_for_testing();
  EXPECT_EQ(simd::resolve_isa(KernelConfig{}), simd::detected_isa());
}

TEST(KernelIsaMatrix, ForcedTiersClampToHostSupport) {
  // Requesting more than the host/build supports must degrade, not fault.
  const simd::Isa detected = simd::detected_isa();
  EXPECT_LE(simd::resolve_isa(with_isa(KernelConfig{}, simd::Isa::kAvx2)),
            detected);
  EXPECT_LE(simd::ops_for_isa(simd::Isa::kAvx2).isa, detected);
  // The scalar tier always exists and is always honored.
  EXPECT_EQ(simd::resolve_isa(with_isa(KernelConfig{}, simd::Isa::kScalar)),
            simd::Isa::kScalar);
  EXPECT_EQ(simd::ops_for_isa(simd::Isa::kScalar).isa, simd::Isa::kScalar);
}

TEST(KernelEquivalence, TrackerReusesPyramidForRepeatedReferenceFrame) {
  const ImageU8 frame = test_frame(160, 120, 21);
  track::TrackerParams params;
  track::ObjectTracker tracker(params);
  std::vector<detect::Detection> dets;
  detect::Detection d;
  d.box = {30.0f, 30.0f, 40.0f, 40.0f};
  dets.push_back(d);
  tracker.set_reference(frame, dets);
  // Same frame again: the stored pyramid must be reused; behaviour (boxes,
  // features) is unchanged either way.
  tracker.set_reference(frame, dets);
  EXPECT_TRUE(tracker.has_reference());
  const auto boxes = tracker.current_boxes();
  ASSERT_EQ(boxes.size(), 1u);
}

}  // namespace
}  // namespace adavp::vision
