// Parallel-vs-serial equivalence of the vision kernel engine.
//
// Every kernel on the tracking hot path is row- or point-parallel with no
// cross-chunk reductions, so `num_threads = 1` and `num_threads = 4` must
// produce bit-identical images, flow vectors, and tracker boxes. These
// tests pin that invariant (and the fused downsample2 against a literal
// transcription of the historical smooth3-then-decimate formulation) so a
// future kernel change that breaks reproducibility fails loudly.

#include <gtest/gtest.h>

#include <vector>

#include "detect/detection.h"
#include "track/tracker.h"
#include "video/scene.h"
#include "vision/good_features.h"
#include "vision/image_ops.h"
#include "vision/optical_flow.h"
#include "vision/pyramid.h"

namespace adavp::vision {
namespace {

KernelConfig serial() { return {.num_threads = 1}; }
KernelConfig parallel4() {
  // Force splitting even on the small test images: four threads, tiny
  // grains, so chunk boundaries land in the middle of rows/points.
  KernelConfig cfg;
  cfg.num_threads = 4;
  cfg.min_rows_per_task = 4;
  cfg.min_points_per_task = 1;
  return cfg;
}

ImageU8 test_frame(int w, int h, std::uint32_t seed) {
  ImageU8 img(w, h);
  std::uint32_t s = seed;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      s = s * 1664525u + 1013904223u;
      img.at(x, y) = static_cast<std::uint8_t>(
          (x * 5 + y * 3 + static_cast<int>((s >> 24) & 63)) % 256);
    }
  }
  return img;
}

template <typename T>
void expect_identical(const Image<T>& a, const Image<T>& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  // operator== on the pixel vectors is an exact byte comparison.
  EXPECT_TRUE(a.pixels() == b.pixels());
}

TEST(KernelEquivalence, RowParallelKernelsAreBitExact) {
  // Odd dimensions on one of the images exercise the clamped border taps.
  for (const auto& frame : {test_frame(128, 96, 1), test_frame(131, 77, 2)}) {
    const ImageF32 fs = to_float(frame, serial());
    const ImageF32 fp = to_float(frame, parallel4());
    expect_identical(fs, fp);

    expect_identical(smooth3(fs, serial()), smooth3(fs, parallel4()));
    expect_identical(smooth5(fs, serial()), smooth5(fs, parallel4()));
    expect_identical(downsample2(fs, serial()), downsample2(fs, parallel4()));

    ImageF32 gxs, gys, gxp, gyp;
    sobel(fs, gxs, gys, serial());
    sobel(fs, gxp, gyp, parallel4());
    expect_identical(gxs, gxp);
    expect_identical(gys, gyp);

    expect_identical(min_eigenvalue_map(fs, 3, serial()),
                     min_eigenvalue_map(fs, 3, parallel4()));
  }
}

/// Literal transcription of the pre-engine downsample2 (full smooth3 pass,
/// then 2x2 mean) — the reference the fused kernel must match bit for bit.
ImageF32 reference_downsample2(const ImageF32& img) {
  if (img.width() < 2 || img.height() < 2) return img;
  const ImageF32 smoothed = smooth3(img, KernelConfig{.num_threads = 1});
  const int w = (img.width() + 1) / 2;
  const int h = (img.height() + 1) / 2;
  ImageF32 out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int sx = 2 * x;
      const int sy = 2 * y;
      const float sum = smoothed.at_clamped(sx, sy) +
                        smoothed.at_clamped(sx + 1, sy) +
                        smoothed.at_clamped(sx, sy + 1) +
                        smoothed.at_clamped(sx + 1, sy + 1);
      out.at(x, y) = sum / 4.0f;
    }
  }
  return out;
}

TEST(KernelEquivalence, FusedDownsampleMatchesUnfusedReference) {
  const std::pair<int, int> sizes[] = {{128, 96}, {131, 77}, {33, 34}, {2, 2}};
  for (const auto& [w, h] : sizes) {
    const ImageF32 img = to_float(test_frame(w, h, 7u));
    expect_identical(reference_downsample2(img), downsample2(img, serial()));
    expect_identical(reference_downsample2(img), downsample2(img, parallel4()));
  }
}

TEST(KernelEquivalence, PyramidAndFlowAreBitExactAcrossThreadCounts) {
  const ImageU8 a = test_frame(160, 120, 11);
  ImageU8 b = test_frame(160, 120, 11);
  // Shift a patch so the flow has something to chase.
  for (int y = 20; y < 60; ++y) {
    for (int x = 20; x < 60; ++x) {
      b.at(x + 3, y + 2) = a.at(x, y);
    }
  }
  const ImagePyramid pas(a, 3, 16, serial());
  const ImagePyramid pap(a, 3, 16, parallel4());
  ASSERT_EQ(pas.levels(), pap.levels());
  for (int l = 0; l < pas.levels(); ++l) {
    expect_identical(pas.level(l), pap.level(l));
  }

  const ImagePyramid pbs(b, 3, 16, serial());
  std::vector<geometry::Point2f> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({6.0f + static_cast<float>(i % 6) * 28.0f,
                   8.0f + static_cast<float>(i / 6) * 22.0f});
  }
  pts.push_back({0.5f, 0.5f});       // border window: clamped path
  pts.push_back({158.5f, 118.5f});   // border window: clamped path

  std::vector<geometry::Point2f> out_s, out_p;
  std::vector<FlowStatus> st_s, st_p;
  calc_optical_flow_pyr_lk(pas, pbs, pts, out_s, st_s, {}, serial());
  calc_optical_flow_pyr_lk(pas, pbs, pts, out_p, st_p, {}, parallel4());
  ASSERT_EQ(out_s.size(), out_p.size());
  for (std::size_t i = 0; i < out_s.size(); ++i) {
    EXPECT_EQ(out_s[i].x, out_p[i].x) << "point " << i;
    EXPECT_EQ(out_s[i].y, out_p[i].y) << "point " << i;
    EXPECT_EQ(st_s[i].tracked, st_p[i].tracked) << "point " << i;
    EXPECT_EQ(st_s[i].error, st_p[i].error) << "point " << i;
  }
}

TEST(KernelEquivalence, TrackerOutputsAreIdenticalSerialVsParallel) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = 24;
  cfg.seed = 3;
  cfg.initial_objects = 3;
  cfg.max_objects = 4;
  cfg.speed_mean = 1.2;
  cfg.speed_jitter = 0.05;
  const video::SyntheticVideo video(cfg);

  auto run = [&](const KernelConfig& kernels) {
    track::TrackerParams params;
    params.kernels = kernels;
    track::ObjectTracker tracker(params);
    std::vector<detect::Detection> dets;
    for (const auto& gt : video.ground_truth(0)) {
      dets.push_back({gt.box, gt.cls, 1.0f});
    }
    tracker.set_reference(video.render(0), dets);
    std::vector<metrics::LabeledBox> boxes;
    for (int f = 1; f < cfg.frame_count; ++f) {
      tracker.track_to(video.render(f), 1);
      for (const auto& lb : tracker.current_boxes()) boxes.push_back(lb);
    }
    return boxes;
  };

  const auto serial_boxes = run(serial());
  const auto parallel_boxes = run(parallel4());
  ASSERT_EQ(serial_boxes.size(), parallel_boxes.size());
  for (std::size_t i = 0; i < serial_boxes.size(); ++i) {
    EXPECT_EQ(serial_boxes[i].box.left, parallel_boxes[i].box.left);
    EXPECT_EQ(serial_boxes[i].box.top, parallel_boxes[i].box.top);
    EXPECT_EQ(serial_boxes[i].box.width, parallel_boxes[i].box.width);
    EXPECT_EQ(serial_boxes[i].box.height, parallel_boxes[i].box.height);
    EXPECT_EQ(serial_boxes[i].cls, parallel_boxes[i].cls);
  }
}

TEST(KernelEquivalence, TrackerReusesPyramidForRepeatedReferenceFrame) {
  const ImageU8 frame = test_frame(160, 120, 21);
  track::TrackerParams params;
  track::ObjectTracker tracker(params);
  std::vector<detect::Detection> dets;
  detect::Detection d;
  d.box = {30.0f, 30.0f, 40.0f, 40.0f};
  dets.push_back(d);
  tracker.set_reference(frame, dets);
  // Same frame again: the stored pyramid must be reused; behaviour (boxes,
  // features) is unchanged either way.
  tracker.set_reference(frame, dets);
  EXPECT_TRUE(tracker.has_reference());
  const auto boxes = tracker.current_boxes();
  ASSERT_EQ(boxes.size(), 1u);
}

}  // namespace
}  // namespace adavp::vision
