#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "json_test_util.h"
#include "obs/time_series.h"
#include "obs/telemetry.h"
#include "util/csv.h"

namespace adavp::obs {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

TimeSeries::Options opts(double window_ms, std::size_t windows,
                         std::vector<double> edges = {}) {
  TimeSeries::Options o;
  o.window_ms = window_ms;
  o.windows = windows;
  o.edges = std::move(edges);
  return o;
}

// ------------------------------------------------------------- windowing

TEST(TimeSeries, AssignsSamplesToWindowsByTimestamp) {
  TimeSeries ts(opts(100.0, 8));
  ts.count(0.0);     // window 0
  ts.count(99.9);    // window 0
  ts.count(100.0);   // window 1 (left-closed)
  ts.count(250.0);   // window 2

  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_DOUBLE_EQ(windows[0].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].end_ms, 100.0);
  EXPECT_EQ(windows[1].count, 1u);
  EXPECT_EQ(windows[2].count, 1u);
  EXPECT_EQ(ts.total_count(), 4u);
  EXPECT_EQ(ts.windows_evicted(), 0u);
}

TEST(TimeSeries, RatePerSecondUsesWindowWidthNotRunLength) {
  // 5 events in a 500 ms window is 10/s — the per-window rate a run-global
  // counter cannot provide.
  TimeSeries ts(opts(500.0, 4));
  for (int i = 0; i < 5; ++i) ts.count(static_cast<double>(i) * 50.0);
  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].rate_per_s, 10.0);
}

TEST(TimeSeries, EmptyGapWindowsAreMaterializedAsRateZero) {
  // A stalled pipeline must read as rate-0 windows, not a seamless jump.
  TimeSeries ts(opts(100.0, 16));
  ts.count(50.0);   // window 0
  ts.count(450.0);  // window 4 — windows 1..3 were silent
  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 5u);
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(windows[static_cast<std::size_t>(i)].index, i);
    EXPECT_EQ(windows[static_cast<std::size_t>(i)].count, 0u);
    EXPECT_DOUBLE_EQ(windows[static_cast<std::size_t>(i)].rate_per_s, 0.0);
  }
}

// ------------------------------------------------------ rollover / ring

TEST(TimeSeries, RingRolloverEvictsOldestWindows) {
  // 4-window ring over 100 ms windows covers 400 ms; driving a virtual
  // clock through 10 windows must recycle the first 6 in place.
  TimeSeries ts(opts(100.0, 4));
  for (int w = 0; w < 10; ++w) {
    ts.count(w * 100.0 + 10.0);
    ts.count(w * 100.0 + 60.0);
  }
  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_EQ(windows.front().index, 6);
  EXPECT_EQ(windows.back().index, 9);
  for (const auto& w : windows) EXPECT_EQ(w.count, 2u);
  EXPECT_EQ(ts.windows_evicted(), 6u);
  EXPECT_EQ(ts.total_count(), 20u);  // total survives eviction
}

TEST(TimeSeries, LateSamplesAreCountedAndDropped) {
  TimeSeries ts(opts(100.0, 4));
  ts.count(950.0);  // newest window = 9; ring covers [6, 9]
  ts.count(650.0);  // window 6 — still live, accepted
  ts.count(550.0);  // window 5 — predates the ring, dropped
  ts.count(10.0);   // window 0 — dropped
  EXPECT_EQ(ts.late_samples(), 2u);
  EXPECT_EQ(ts.total_count(), 2u);
  const auto windows = ts.windows();
  EXPECT_EQ(windows.front().index, 6);
  EXPECT_EQ(windows.front().count, 1u);
}

TEST(TimeSeries, NegativeTimestampsClampToWindowZero) {
  TimeSeries ts(opts(100.0, 4));
  ts.count(-50.0);
  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].count, 1u);
}

// ------------------------------------------------------------ quantiles

TEST(TimeSeries, PerWindowQuantilesTrackTheWindowNotTheRun) {
  // Latencies jump 10x between windows; the per-window p50 must follow,
  // which a single run-global histogram cannot show.
  TimeSeries ts(opts(100.0, 8, {1, 2, 4, 8, 16, 32, 64, 128, 256}));
  for (int i = 0; i < 50; ++i) ts.record(10.0 + i, 10.0);   // window 0
  for (int i = 0; i < 50; ++i) ts.record(110.0 + i, 100.0); // window 1
  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_NEAR(windows[0].p50, 10.0, 8.0);   // inside [8, 16) bucket
  EXPECT_NEAR(windows[1].p50, 100.0, 64.0); // inside [64, 128) bucket
  EXPECT_LT(windows[0].p50, windows[1].p50);
  EXPECT_DOUBLE_EQ(windows[0].min, 10.0);
  EXPECT_DOUBLE_EQ(windows[0].max, 10.0);
  EXPECT_DOUBLE_EQ(windows[1].sum, 5000.0);
}

TEST(TimeSeries, CountsOnlySeriesReportsZeroQuantiles) {
  TimeSeries ts(opts(100.0, 4));  // no edges
  ts.record(10.0, 42.0);
  const auto windows = ts.windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].p50, 0.0);
  EXPECT_DOUBLE_EQ(windows[0].sum, 42.0);
}

// ----------------------------------------------------------- export

TEST(TimeSeries, JsonExportParsesBackWithAllWindowKeys) {
  TimeSeries ts(opts(100.0, 8, {5, 10, 20}));
  ts.record(10.0, 7.0);
  ts.record(150.0, 15.0);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(ts.to_json()).parse(doc)) << ts.to_json();
  ASSERT_EQ(doc.kind, JsonValue::kObject);
  EXPECT_DOUBLE_EQ(doc.get("window_ms")->number, 100.0);
  const JsonValue* windows = doc.get("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->array.size(), 2u);
  for (const char* key : {"index", "start_ms", "end_ms", "count", "sum",
                          "min", "max", "p50", "p90", "p99", "rate_per_s"}) {
    EXPECT_NE(windows->array[0].get(key), nullptr) << key;
  }
  EXPECT_DOUBLE_EQ(windows->array[1].get("start_ms")->number, 100.0);
}

TEST(TimeSeries, CsvExportWritesOneRowPerWindow) {
  TimeSeries ts(opts(100.0, 8));
  ts.count(10.0);
  ts.count(150.0);
  const std::string path = ::testing::TempDir() + "obs_time_series.csv";
  {
    util::CsvWriter csv(path);
    csv.header({"series", "window", "start_ms", "count", "rate_per_s", "p50",
                "p90", "p99"});
    ts.write_csv(csv, "test.series");
  }
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  ASSERT_TRUE(std::getline(in, line));  // header
  while (std::getline(in, line)) {
    EXPECT_EQ(line.rfind("test.series,", 0), 0u) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 2);
  std::remove(path.c_str());
}

// ----------------------------------------------------------- registry

TEST(TimeSeries, RegistryReturnsSameSeriesForSameKey) {
  TimeSeriesRegistry registry;
  TimeSeries& a = registry.series("rt", "latency", opts(100.0, 8));
  TimeSeries& b = registry.series("rt", "latency", opts(999.0, 2));
  EXPECT_EQ(&a, &b);
  EXPECT_DOUBLE_EQ(b.options().window_ms, 100.0);  // first options win
}

TEST(TimeSeries, RegistryJsonNamesEverySeries) {
  TimeSeriesRegistry registry;
  registry.series("rt", "latency", opts(100.0, 8)).count(5.0);
  registry.series("rt", "coast", opts(100.0, 8)).count(5.0);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(registry.to_json()).parse(doc));
  const JsonValue* series = doc.get("series");
  ASSERT_NE(series, nullptr);
  EXPECT_NE(series->get("rt.latency"), nullptr);
  EXPECT_NE(series->get("rt.coast"), nullptr);
  registry.clear();
  JsonValue empty;
  ASSERT_TRUE(JsonParser(registry.to_json()).parse(empty));
  EXPECT_TRUE(empty.get("series")->object.empty());
}

// The telemetry singleton exposes a registry gated exactly like metrics().
TEST(TimeSeries, TelemetrySeriesJsonRoundTrips) {
  Telemetry::set_enabled(true);
  Telemetry::instance().reset();
  time_series().series("engine", "cycle_ms", opts(100.0, 8)).record(10.0, 3.0);
  JsonValue doc;
  ASSERT_TRUE(JsonParser(Telemetry::instance().series_json()).parse(doc));
  EXPECT_NE(doc.get("series")->get("engine.cycle_ms"), nullptr);
  Telemetry::instance().reset();
  Telemetry::set_enabled(false);
}

// Series keys honor the same thread-local prefix as MetricsRegistry, so a
// fleet stream's series land under its "fleet.stream<N>." label.
TEST(TimeSeries, RegistryKeyHonorsScopedMetricPrefix) {
  Telemetry::set_enabled(true);
  Telemetry::instance().reset();
  time_series().series("engine", "cycle_ms", opts(100.0, 8)).record(10.0, 1.0);
  {
    ScopedMetricPrefix prefix("fleet.stream2.");
    time_series().series("engine", "cycle_ms", opts(100.0, 8)).record(10.0, 2.0);
  }
  JsonValue doc;
  ASSERT_TRUE(JsonParser(Telemetry::instance().series_json()).parse(doc));
  EXPECT_NE(doc.get("series")->get("engine.cycle_ms"), nullptr);
  EXPECT_NE(doc.get("series")->get("fleet.stream2.engine.cycle_ms"), nullptr);
  Telemetry::instance().reset();
  Telemetry::set_enabled(false);
}

}  // namespace
}  // namespace adavp::obs
