#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "video/camera.h"
#include "video/frame_buffer.h"
#include "video/frame_store.h"
#include "video/object_class.h"
#include "video/profiles.h"
#include "video/scene.h"
#include "vision/image_ops.h"

namespace adavp::video {
namespace {

SceneConfig small_config(std::uint64_t seed = 5, int frames = 40) {
  SceneConfig cfg;
  cfg.width = 160;
  cfg.height = 120;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 3;
  return cfg;
}

// --------------------------------------------------------- ObjectClass ---

TEST(ObjectClassTest, NamesAreDistinct) {
  std::set<std::string_view> names;
  for (int i = 0; i < kNumObjectClasses; ++i) {
    names.insert(class_name(static_cast<ObjectClass>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumObjectClasses));
}

TEST(ObjectClassTest, ConfusablePairsAreSymmetricForVehicles) {
  EXPECT_EQ(confusable_class(ObjectClass::kCar), ObjectClass::kTruck);
  EXPECT_EQ(confusable_class(ObjectClass::kTruck), ObjectClass::kCar);
  // A person has no confusable peer.
  EXPECT_EQ(confusable_class(ObjectClass::kPerson), ObjectClass::kPerson);
}

// ------------------------------------------------------- SyntheticVideo --

TEST(SyntheticVideoTest, DeterministicRendering) {
  const SceneConfig cfg = small_config();
  SyntheticVideo a(cfg);
  SyntheticVideo b(cfg);
  for (int f : {0, 10, 39}) {
    EXPECT_EQ(a.render(f).pixels(), b.render(f).pixels()) << "frame " << f;
    ASSERT_EQ(a.ground_truth(f).size(), b.ground_truth(f).size());
  }
}

TEST(SyntheticVideoTest, DifferentSeedsDiffer) {
  SceneConfig cfg = small_config(1);
  SyntheticVideo a(cfg);
  cfg.seed = 2;
  SyntheticVideo b(cfg);
  EXPECT_NE(a.render(5).pixels(), b.render(5).pixels());
}

TEST(SyntheticVideoTest, GroundTruthBoxesInsideFrame) {
  SyntheticVideo video(small_config(7, 60));
  for (int f = 0; f < video.frame_count(); ++f) {
    for (const auto& gt : video.ground_truth(f)) {
      EXPECT_GE(gt.box.left, 0.0f);
      EXPECT_GE(gt.box.top, 0.0f);
      EXPECT_LE(gt.box.right(), 160.0f + 1e-3f);
      EXPECT_LE(gt.box.bottom(), 120.0f + 1e-3f);
      EXPECT_FALSE(gt.box.empty());
    }
  }
}

TEST(SyntheticVideoTest, SceneNeverEmpty) {
  SceneConfig cfg = small_config(11, 120);
  cfg.initial_objects = 1;
  cfg.max_objects = 2;
  cfg.speed_mean = 3.0;  // objects exit quickly, respawn must kick in
  SyntheticVideo video(cfg);
  int empty_frames = 0;
  for (int f = 0; f < video.frame_count(); ++f) {
    if (video.ground_truth(f).empty()) ++empty_frames;
  }
  // Brief gaps are allowed while a respawned object enters the viewport,
  // but the scene must repopulate.
  EXPECT_LT(empty_frames, video.frame_count() / 2);
}

TEST(SyntheticVideoTest, ObjectsActuallyMove) {
  SceneConfig cfg = small_config(13, 30);
  cfg.speed_mean = 2.0;
  SyntheticVideo video(cfg);
  const auto& first = video.ground_truth(0);
  const auto& later = video.ground_truth(20);
  ASSERT_FALSE(first.empty());
  // Find a persistent object and check it moved.
  for (const auto& a : first) {
    for (const auto& b : later) {
      if (a.object_id == b.object_id) {
        EXPECT_GT((b.box.center() - a.box.center()).norm(), 1.0f);
        return;
      }
    }
  }
  GTEST_SKIP() << "no persistent object across 20 frames";
}

TEST(SyntheticVideoTest, FasterConfigHasHigherTrueSpeed) {
  SceneConfig slow = small_config(17, 60);
  slow.speed_mean = 0.3;
  slow.camera_pan = 0.0;
  SceneConfig fast = small_config(17, 60);
  fast.speed_mean = 2.5;
  fast.camera_pan = 1.5;
  EXPECT_GT(SyntheticVideo(fast).mean_true_speed(),
            SyntheticVideo(slow).mean_true_speed() * 2.0);
}

TEST(SyntheticVideoTest, ConsecutiveFramesAreSimilarButNotIdentical) {
  SyntheticVideo video(small_config(19, 10));
  const auto f0 = video.render(0);
  const auto f1 = video.render(1);
  const double diff = vision::mean_abs_diff(f0, f1);
  EXPECT_GT(diff, 0.01);   // something moved
  EXPECT_LT(diff, 30.0);   // temporal coherence (paper's premise for LK)
}

TEST(SyntheticVideoTest, CameraPanShiftsBackground) {
  SceneConfig cfg = small_config(23, 10);
  cfg.camera_pan = 3.0;
  cfg.initial_objects = 0;
  cfg.max_objects = 0;
  cfg.spawn_per_second = 0.0;
  cfg.noise_sigma = 0.0;
  SyntheticVideo video(cfg);
  const auto f0 = video.render(0);
  const auto f1 = video.render(1);
  // Background at frame 1, column x should equal frame 0 at column x+pan.
  // (Spot-check away from any respawn-inserted object.)
  int matches = 0;
  int checks = 0;
  for (int y = 10; y < 110; y += 13) {
    for (int x = 10; x < 140; x += 17) {
      ++checks;
      if (std::abs(static_cast<int>(f1.at(x, y)) -
                   static_cast<int>(f0.at_clamped(x + 3, y))) <= 2) {
        ++matches;
      }
    }
  }
  EXPECT_GT(matches, checks * 7 / 10);
}

TEST(SyntheticVideoTest, ParallelPrecacheBitIdenticalToSerial) {
  const SceneConfig cfg = small_config(37, 24);
  SyntheticVideo serial(cfg);
  serial.precache(/*num_threads=*/1);
  SyntheticVideo parallel(cfg);
  parallel.precache(/*num_threads=*/0);  // all hardware threads
  ASSERT_TRUE(serial.is_precached());
  ASSERT_TRUE(parallel.is_precached());
  for (int f = 0; f < cfg.frame_count; ++f) {
    ASSERT_NE(serial.cached_frame(f), nullptr);
    ASSERT_NE(parallel.cached_frame(f), nullptr);
    EXPECT_EQ(serial.cached_frame(f)->pixels(),
              parallel.cached_frame(f)->pixels())
        << "frame " << f;
  }
}

TEST(SyntheticVideoTest, RowParallelRenderBitIdenticalToSerial) {
  SyntheticVideo video(small_config(41, 4));
  for (int f = 0; f < 4; ++f) {
    vision::ImageU8 serial;
    video.render_into(f, serial, /*num_threads=*/1);
    vision::ImageU8 threaded;
    video.render_into(f, threaded, /*num_threads=*/4);
    EXPECT_EQ(serial.pixels(), threaded.pixels()) << "frame " << f;
    EXPECT_EQ(serial.pixels(), video.render(f).pixels()) << "frame " << f;
  }
}

TEST(SyntheticVideoTest, TimestampsFollowFps) {
  SyntheticVideo video(small_config());
  EXPECT_DOUBLE_EQ(video.timestamp_ms(0), 0.0);
  EXPECT_NEAR(video.timestamp_ms(30), 1000.0, 1e-9);
  EXPECT_NEAR(video.frame_interval_ms(), 1000.0 / 30.0, 1e-12);
}

// ------------------------------------------------------------ Profiles ---

TEST(Profiles, LibraryHasFourteenScenarios) {
  EXPECT_EQ(scenario_library().size(), 14u);
}

TEST(Profiles, TrainingAndTestSetsAreDisjointSeeds) {
  const auto train = make_training_set(1, 60);
  const auto test = make_test_set(1, 60);
  EXPECT_EQ(train.size(), 28u);
  EXPECT_EQ(test.size(), 14u);
  std::set<std::uint64_t> seeds;
  for (const auto& cfg : train) seeds.insert(cfg.seed);
  for (const auto& cfg : test) {
    EXPECT_EQ(seeds.count(cfg.seed), 0u) << cfg.name;
  }
}

TEST(Profiles, ScenariosSpanSlowAndFastContent) {
  double min_speed = 1e9;
  double max_speed = 0.0;
  for (const auto& s : scenario_library()) {
    const double apparent = s.speed_mean + s.camera_pan;
    min_speed = std::min(min_speed, apparent);
    max_speed = std::max(max_speed, apparent);
  }
  EXPECT_LT(min_speed, 0.5);  // meeting-room-like
  EXPECT_GT(max_speed, 3.0);  // racetrack / car-mounted
}

TEST(Profiles, MakeSceneAppliesScale) {
  const auto& scenario = scenario_library()[0];
  const SceneConfig base = make_scene(scenario, 1, 100, 1.0);
  const SceneConfig scaled = make_scene(scenario, 1, 100, 2.0);
  EXPECT_NEAR(scaled.speed_mean, base.speed_mean * 2.0, 1e-12);
  EXPECT_NEAR(scaled.camera_pan, base.camera_pan * 2.0, 1e-12);
  EXPECT_EQ(scaled.frame_count, 100);
}

// --------------------------------------------------------- FrameBuffer ---

FrameRef make_frame(int index) {
  FrameRef f;
  f.index = index;
  f.timestamp_ms = index * 33.3;
  f.image_ptr = std::make_shared<const vision::ImageU8>(4, 4);
  return f;
}

TEST(FrameBufferTest, NewestReturnsLatest) {
  FrameBuffer buffer;
  buffer.push(make_frame(0));
  buffer.push(make_frame(1));
  buffer.push(make_frame(2));
  const auto newest = buffer.wait_newest();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->index, 2);
  EXPECT_EQ(buffer.size(), 3u);  // non-destructive
}

TEST(FrameBufferTest, DrainRemovesPrefix) {
  FrameBuffer buffer;
  for (int i = 0; i < 5; ++i) buffer.push(make_frame(i));
  const auto drained = buffer.drain_up_to(2);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].index, 0);
  EXPECT_EQ(drained[2].index, 2);
  EXPECT_EQ(buffer.size(), 2u);
}

TEST(FrameBufferTest, CapacityDropsOldest) {
  FrameBuffer buffer(3);
  for (int i = 0; i < 5; ++i) buffer.push(make_frame(i));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.dropped(), 2u);
  const auto drained = buffer.drain_up_to(100);
  EXPECT_EQ(drained.front().index, 2);
}

TEST(FrameBufferTest, CloseWakesWaiters) {
  FrameBuffer buffer;
  std::thread waiter([&] {
    const auto frame = buffer.wait_newest();
    EXPECT_FALSE(frame.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  buffer.close();
  waiter.join();
  EXPECT_TRUE(buffer.closed());
}

TEST(FrameBufferTest, WaitNewerBlocksUntilNewerFrame) {
  FrameBuffer buffer;
  buffer.push(make_frame(0));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    buffer.push(make_frame(1));
  });
  const auto frame = buffer.wait_newer(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->index, 1);
  producer.join();
}

TEST(FrameBufferTest, WaitNewerReturnsNulloptWhenClosedStale) {
  FrameBuffer buffer;
  buffer.push(make_frame(3));
  buffer.close();
  EXPECT_FALSE(buffer.wait_newer(3).has_value());
  EXPECT_TRUE(buffer.wait_newer(2).has_value());
}

// -------------------------------------------------------- CameraSource ---

TEST(CameraSourceTest, PushesAllFramesAndCloses) {
  SceneConfig cfg = small_config(29, 12);
  SyntheticVideo video(cfg);
  FrameStore store(video);
  FrameBuffer buffer(64);
  CameraSource camera(store, buffer, /*time_scale=*/100.0);
  camera.start();
  while (!buffer.closed()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  camera.stop();
  EXPECT_EQ(camera.frames_captured(), 12);
  EXPECT_TRUE(buffer.closed());
  const auto frames = buffer.drain_up_to(1000);
  EXPECT_EQ(frames.size(), 12u);
  EXPECT_EQ(frames.back().index, 11);
}

// ------------------------------------------- FrameBuffer shutdown path ---
// A mid-run stop must wake every blocked consumer and never hang — the
// supervisor's abort path closes the buffer from another thread while the
// detector is parked in wait_newer.

TEST(FrameBufferShutdownTest, CloseWakesABlockedWaiter) {
  FrameBuffer buffer;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_FALSE(buffer.wait_newest().has_value());
    // Once closed-and-empty, later waits return immediately too.
    EXPECT_FALSE(buffer.wait_newer(100).has_value());
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());  // genuinely parked, not spinning through
  buffer.close();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(FrameBufferShutdownTest, PushAfterCloseIsSilentlyDropped) {
  SyntheticVideo video(small_config(33, 4));
  FrameStore store(video);
  FrameBuffer buffer(8);
  buffer.push(store.get(0));
  buffer.push(store.get(1));
  buffer.close();
  buffer.push(store.get(2));  // producer racing the shutdown
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.dropped(), 0u);  // a shutdown race is not an overflow
  // What was queued before the close still drains.
  EXPECT_EQ(buffer.drain_up_to(10).size(), 2u);
}

TEST(FrameBufferShutdownTest, CloseDuringProductionUnblocksConsumer) {
  SyntheticVideo video(small_config(35, 60));
  FrameStore store(video);
  FrameBuffer buffer(64);
  std::thread consumer([&] {
    int last = -1;
    while (true) {
      const auto frame = buffer.wait_newer(last);
      if (!frame.has_value()) break;
      last = frame->index;
    }
    EXPECT_FALSE(buffer.wait_newer(last).has_value());
  });
  for (int i = 0; i < 30; ++i) buffer.push(store.get(i));
  buffer.close();
  consumer.join();  // hangs here if a wakeup was lost
  EXPECT_TRUE(buffer.closed());
}

TEST(CameraSourceTest, StopInterruptsEarly) {
  SceneConfig cfg = small_config(31, 3000);
  SyntheticVideo video(cfg);
  FrameStore store(video);
  FrameBuffer buffer(16);
  CameraSource camera(store, buffer, /*time_scale=*/1.0);  // 100 s of video
  camera.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  camera.stop();
  EXPECT_LT(camera.frames_captured(), 3000);
  EXPECT_TRUE(buffer.closed());
}

// Regression for the fleet-era multi-consumer audit: wait_newer waiters
// have *per-waiter* predicates (each waits for its own after_index), so
// push must broadcast. Under the old notify_one, a push of frame 1 could
// wake only the waiter parked on after_index=100 — which re-sleeps — while
// the waiter the push actually satisfied (after_index=0) slept forever.
TEST(FrameBufferShutdownTest, MultipleWaitersWithDistinctPredicatesAllWake) {
  for (int iteration = 0; iteration < 20; ++iteration) {
    FrameBuffer buffer;
    std::atomic<bool> satisfied_woke{false};
    // Parked first so a FIFO condition variable would hand it the wakeup:
    // a waiter whose predicate (index > 100) the push does NOT satisfy.
    std::thread stale_waiter([&] {
      const auto frame = buffer.wait_newer(100);
      EXPECT_FALSE(frame.has_value());  // only close() releases it
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Parked second: the waiter the push satisfies.
    std::thread fresh_waiter([&] {
      const auto frame = buffer.wait_newer(0);
      ASSERT_TRUE(frame.has_value());
      EXPECT_EQ(frame->index, 1);
      satisfied_woke.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    buffer.push(make_frame(1));
    // The satisfied waiter must wake from the push alone — before close()
    // broadcasts — or the bug is back.
    for (int spins = 0; spins < 2000 && !satisfied_woke.load(); ++spins) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(satisfied_woke.load()) << "iteration " << iteration;
    buffer.close();
    stale_waiter.join();
    fresh_waiter.join();
  }
}

}  // namespace
}  // namespace adavp::video
