#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scoring.h"
#include "core/training.h"
#include "metrics/accuracy.h"

namespace adavp::core {
namespace {

/// A small but diverse test set: slow, medium, fast content.
std::vector<video::SceneConfig> mini_dataset(int frames = 200) {
  auto scene = [&](std::uint64_t seed, double speed, double pan) {
    video::SceneConfig cfg;
    cfg.width = 256;
    cfg.height = 160;
    cfg.frame_count = frames;
    cfg.seed = seed;
    cfg.initial_objects = 4;
    cfg.speed_mean = speed;
    cfg.camera_pan = pan;
    return cfg;
  };
  return {scene(301, 0.25, 0.0), scene(302, 1.2, 0.5), scene(303, 2.6, 1.8)};
}

TEST(MethodSpecTest, NamesMatchPaperStyle) {
  EXPECT_EQ(method_name({MethodKind::kAdaVP, {}}), "AdaVP");
  EXPECT_EQ(method_name({MethodKind::kMpdt, detect::ModelSetting::kYolov3_512}),
            "MPDT-YOLOv3-512");
  EXPECT_EQ(
      method_name({MethodKind::kMarlin, detect::ModelSetting::kYolov3_320}),
      "MARLIN-YOLOv3-320");
  EXPECT_EQ(method_name({MethodKind::kContinuous,
                         detect::ModelSetting::kYolov3Tiny_320}),
            "YOLOv3-tiny-320-continuous");
}

TEST(RunDataset, OneRunPerVideo) {
  const auto configs = mini_dataset(120);
  const DatasetRun dataset =
      run_dataset({MethodKind::kMpdt, detect::ModelSetting::kYolov3_512},
                  configs, nullptr, 7);
  ASSERT_EQ(dataset.runs.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(dataset.runs[i].frames.size(),
              static_cast<std::size_t>(configs[i].frame_count));
  }
}

TEST(RunDataset, AccuraciesInUnitRange) {
  const auto configs = mini_dataset(120);
  const DatasetRun dataset =
      run_dataset({MethodKind::kMpdt, detect::ModelSetting::kYolov3_512},
                  configs, nullptr, 7);
  const auto accuracies = dataset_video_accuracies(dataset, configs, 0.7, 0.5);
  ASSERT_EQ(accuracies.size(), configs.size());
  for (double a : accuracies) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Integration, AdaVpCompetitiveWithBestFixedSetting) {
  // The headline claim (Fig. 6): AdaVP >= every fixed-setting MPDT.
  // On this miniature dataset we require AdaVP to be at least close to the
  // best fixed setting (within noise) and strictly better than the worst.
  const auto configs = mini_dataset(250);
  const adapt::ModelAdapter adapter = pretrained_adapter();

  const double adavp = dataset_accuracy(
      run_dataset({MethodKind::kAdaVP, detect::ModelSetting::kYolov3_512},
                  configs, &adapter, 11),
      configs);

  double best_fixed = 0.0;
  double worst_fixed = 1.0;
  for (detect::ModelSetting setting : detect::kAdaptiveSettings) {
    const double acc = dataset_accuracy(
        run_dataset({MethodKind::kMpdt, setting}, configs, nullptr, 11), configs);
    best_fixed = std::max(best_fixed, acc);
    worst_fixed = std::min(worst_fixed, acc);
  }
  EXPECT_GE(adavp, worst_fixed);
  EXPECT_GE(adavp, best_fixed - 0.08);
}

TEST(Integration, MpdtBeatsMarlinOnAverage) {
  const auto configs = mini_dataset(250);
  const detect::ModelSetting setting = detect::ModelSetting::kYolov3_512;
  const double mpdt = dataset_accuracy(
      run_dataset({MethodKind::kMpdt, setting}, configs, nullptr, 13), configs);
  const double marlin = dataset_accuracy(
      run_dataset({MethodKind::kMarlin, setting}, configs, nullptr, 13), configs);
  EXPECT_GE(mpdt, marlin - 0.02);
}

TEST(Integration, EnergyScalingToReferenceDuration) {
  const auto configs = mini_dataset(120);
  const DatasetRun dataset =
      run_dataset({MethodKind::kMpdt, detect::ModelSetting::kYolov3_512},
                  configs, nullptr, 17);
  const energy::RailEnergy raw = dataset_energy(dataset, 0.0);
  const energy::RailEnergy scaled = dataset_energy(dataset, 1.31);
  EXPECT_GT(scaled.total_wh(), raw.total_wh());
  // 3 videos x 120 frames = 12 s of video scaled to 1.31 h: factor ~393.
  EXPECT_NEAR(scaled.total_wh() / raw.total_wh(), 1.31 * 3600.0 / 12.0, 40.0);
}

TEST(Integration, ContinuousLatencyMultiplierSurfaces) {
  const auto configs = mini_dataset(60);
  const DatasetRun dataset = run_dataset(
      {MethodKind::kContinuous, detect::ModelSetting::kYolov3_608}, configs,
      nullptr, 19);
  EXPECT_GT(dataset_latency_multiplier(dataset), 10.0);
}

}  // namespace
}  // namespace adavp::core
