#include <gtest/gtest.h>

#include "core/mpdt_pipeline.h"
#include "core/training.h"

namespace adavp::core {
namespace {

video::SceneConfig scene(std::uint64_t seed, int frames, double speed,
                         double pan = 0.0) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 4;
  cfg.speed_mean = speed;
  cfg.camera_pan = pan;
  return cfg;
}

TEST(ChunkStats, ChunkCountAndAverages) {
  const video::SyntheticVideo video(scene(3, 95, 1.0));
  MpdtOptions options;
  const RunResult run = run_mpdt(video, options);
  const auto chunks = chunk_stats(run, video, 30, 0.5);
  ASSERT_EQ(chunks.size(), 4u);  // ceil(95 / 30)
  for (const auto& chunk : chunks) {
    EXPECT_GE(chunk.mean_f1, 0.0);
    EXPECT_LE(chunk.mean_f1, 1.0);
    EXPECT_GE(chunk.mean_velocity, 0.0);
  }
}

TEST(ChunkStats, VelocityCarriedAcrossQuietChunks) {
  const video::SyntheticVideo video(scene(5, 150, 1.5));
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_608;  // long cycles
  const RunResult run = run_mpdt(video, options);
  const auto chunks = chunk_stats(run, video, 30, 0.5);
  // After the first detection cycle completes, velocity should be known
  // for every subsequent chunk (carried forward when a chunk has no cycle).
  bool seen_positive = false;
  for (const auto& chunk : chunks) {
    if (chunk.mean_velocity > 0.0) seen_positive = true;
    if (seen_positive) EXPECT_GT(chunk.mean_velocity, 0.0);
  }
  EXPECT_TRUE(seen_positive);
}

TEST(TrainAdaptation, ProducesMonotoneThresholdsAndSamples) {
  // A tiny but real training set: one slow, one medium, one fast video.
  std::vector<video::SceneConfig> configs = {
      scene(101, 120, 0.3), scene(102, 120, 1.4, 0.5), scene(103, 120, 2.8, 1.8)};
  TrainingOptions options;
  options.seed = 7;
  const TrainingReport report = train_adaptation(configs, options);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(report.sample_count[s], 0) << "size index " << s;
    EXPECT_LE(report.thresholds[s].v1, report.thresholds[s].v2);
    EXPECT_LE(report.thresholds[s].v2, report.thresholds[s].v3);
    EXPECT_GE(report.training_accuracy[s], 0.25);  // better than random
  }
}

TEST(TrainAdaptation, AdapterFromReportClassifies) {
  std::vector<video::SceneConfig> configs = {scene(201, 90, 0.4),
                                             scene(202, 90, 2.5, 1.5)};
  const TrainingReport report = train_adaptation(configs, {});
  const adapt::ModelAdapter adapter = make_adapter(report);
  // Very slow content must map to a larger size than very fast content.
  const auto slow_choice =
      adapter.next_setting(0.01, detect::ModelSetting::kYolov3_512);
  const auto fast_choice =
      adapter.next_setting(50.0, detect::ModelSetting::kYolov3_512);
  EXPECT_EQ(slow_choice, detect::ModelSetting::kYolov3_608);
  EXPECT_EQ(fast_choice, detect::ModelSetting::kYolov3_320);
}

TEST(PretrainedAdapter, HasSaneMonotoneThresholds) {
  const adapt::ModelAdapter adapter = pretrained_adapter();
  for (detect::ModelSetting current : detect::kAdaptiveSettings) {
    const adapt::ThresholdSet& set = adapter.thresholds_for(current);
    EXPECT_GT(set.v1, 0.0);
    EXPECT_LE(set.v1, set.v2);
    EXPECT_LE(set.v2, set.v3);
    EXPECT_LT(set.v3, 20.0);  // plausible pixel velocities
  }
}

}  // namespace
}  // namespace adavp::core
