#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "detect/detector.h"
#include "detect/faulty_detector.h"
#include "track/faulty_tracker.h"
#include "track/tracker.h"
#include "util/fault_plan.h"
#include "video/frame_glitch.h"
#include "video/frame_store.h"
#include "video/scene.h"

namespace adavp {
namespace {

video::SceneConfig small_scene(std::uint64_t seed = 3) {
  video::SceneConfig cfg;
  cfg.width = 160;
  cfg.height = 96;
  cfg.frame_count = 30;
  cfg.seed = seed;
  cfg.initial_objects = 3;
  return cfg;
}

// ---------------------------------------------------------------- DSL ----

TEST(FaultPlan, ParsesChannelsRulesAndTriggers) {
  std::string error;
  const auto plan = util::FaultPlan::parse(
      "detector: stall p=0.05 ms=1200; garbage at=3,11 n=5; latency every=7 "
      "x=4 | camera: black p=0.02; hiccup every=40 ms=120",
      99, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_FALSE(plan->empty());

  const util::FaultChannel detector = plan->channel("detector");
  ASSERT_EQ(detector.rules().size(), 3u);
  EXPECT_EQ(detector.rules()[0].kind, util::FaultKind::kStall);
  EXPECT_DOUBLE_EQ(detector.rules()[0].probability, 0.05);
  EXPECT_DOUBLE_EQ(detector.rules()[0].magnitude, 1200.0);
  EXPECT_EQ(detector.rules()[1].kind, util::FaultKind::kGarbage);
  EXPECT_EQ(detector.rules()[1].at, (std::vector<int>{3, 11}));
  EXPECT_EQ(detector.rules()[2].every, 7);

  const util::FaultChannel camera = plan->channel("camera");
  ASSERT_EQ(camera.rules().size(), 2u);
  EXPECT_TRUE(plan->channel("nonexistent").empty());
}

TEST(FaultPlan, AtAndEveryTriggersFireExactlyWhereToldTo) {
  const auto plan =
      util::FaultPlan::parse("detector: drop at=2,5; stall every=4 ms=9", 1);
  ASSERT_TRUE(plan.has_value());
  const util::FaultChannel ch = plan->channel("detector");
  for (int i = 0; i < 12; ++i) {
    const auto decisions = ch.decide(i);
    const bool want_drop = (i == 2 || i == 5);
    const bool want_stall = (i % 4 == 0);
    int drops = 0, stalls = 0;
    for (const auto& d : decisions) {
      if (d.kind == util::FaultKind::kDrop) ++drops;
      if (d.kind == util::FaultKind::kStall) ++stalls;
    }
    EXPECT_EQ(drops, want_drop ? 1 : 0) << "frame " << i;
    EXPECT_EQ(stalls, want_stall ? 1 : 0) << "frame " << i;
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  std::string error;
  // Unknown kind.
  EXPECT_FALSE(util::FaultPlan::parse("detector: explode p=0.1", 1, &error));
  EXPECT_NE(error.find("unknown fault kind"), std::string::npos);
  // No trigger.
  EXPECT_FALSE(util::FaultPlan::parse("detector: stall ms=100", 1, &error));
  // Two triggers.
  EXPECT_FALSE(
      util::FaultPlan::parse("detector: stall p=0.1 every=3", 1, &error));
  // Bad probability.
  EXPECT_FALSE(util::FaultPlan::parse("detector: stall p=1.5", 1, &error));
  // Bad number.
  EXPECT_FALSE(util::FaultPlan::parse("detector: stall p=abc", 1, &error));
  // Unknown key.
  EXPECT_FALSE(util::FaultPlan::parse("detector: stall p=0.1 q=2", 1, &error));
  // Missing channel prefix.
  EXPECT_FALSE(util::FaultPlan::parse("stall p=0.1", 1, &error));
  // Channel without rules.
  EXPECT_FALSE(util::FaultPlan::parse("detector: ;", 1, &error));
}

// A typo'd channel name must be a hard parse error that names the offending
// token and lists the valid channels — a silently-inert chaos plan is a
// false negative factory (ROBUSTNESS.md §2a).
TEST(FaultPlan, UnknownChannelIsAHardError) {
  std::string error;
  EXPECT_FALSE(util::FaultPlan::parse("gups: hang p=0.1", 1, &error));
  EXPECT_NE(error.find("unknown fault channel"), std::string::npos) << error;
  EXPECT_NE(error.find("'gups'"), std::string::npos) << error;
  // The error lists every valid channel, verbatim.
  EXPECT_NE(error.find(std::string(util::valid_fault_channels())),
            std::string::npos)
      << error;
  for (const char* channel :
       {"detector", "camera", "tracker", "gpu", "stream", "codec"}) {
    EXPECT_NE(util::valid_fault_channels().find(channel),
              std::string_view::npos)
        << channel;
  }
  // A valid channel buried in a multi-section spec does not save it.
  EXPECT_FALSE(util::FaultPlan::parse(
      "detector: stall p=0.1 ms=5 | steam: crash every=9", 1, &error));
  EXPECT_NE(error.find("'steam'"), std::string::npos) << error;
}

// The unknown-kind error names the token and lists the valid kinds too.
TEST(FaultPlan, UnknownKindErrorListsValidKinds) {
  std::string error;
  EXPECT_FALSE(util::FaultPlan::parse("gpu: explode p=0.1", 1, &error));
  EXPECT_NE(error.find("'explode'"), std::string::npos) << error;
  EXPECT_NE(error.find("hang"), std::string::npos) << error;
  EXPECT_NE(error.find("wedge"), std::string::npos) << error;
  EXPECT_NE(error.find("crash"), std::string::npos) << error;
}

// The supervision-era kinds parse with their channel-appropriate defaults.
TEST(FaultPlan, ParsesSupervisionKinds) {
  std::string error;
  const auto plan = util::FaultPlan::parse(
      "gpu: hang p=0.02; wedge at=7 | stream: crash every=200; wedge ms=40 "
      "p=0.1 | codec: drop n=3 at=5; stall every=9 ms=15",
      11, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  const util::FaultChannel gpu = plan->channel("gpu");
  ASSERT_EQ(gpu.rules().size(), 2u);
  EXPECT_EQ(gpu.rules()[0].kind, util::FaultKind::kHang);
  EXPECT_DOUBLE_EQ(gpu.rules()[0].magnitude, 1.0);  // one watchdog budget
  EXPECT_EQ(gpu.rules()[1].kind, util::FaultKind::kWedge);
  const util::FaultChannel stream = plan->channel("stream");
  ASSERT_EQ(stream.rules().size(), 2u);
  EXPECT_EQ(stream.rules()[0].kind, util::FaultKind::kCrash);
  EXPECT_EQ(stream.rules()[0].every, 200);
  EXPECT_EQ(stream.rules()[1].kind, util::FaultKind::kWedge);
  EXPECT_DOUBLE_EQ(stream.rules()[1].magnitude, 40.0);
  const util::FaultChannel codec = plan->channel("codec");
  ASSERT_EQ(codec.rules().size(), 2u);
  EXPECT_EQ(codec.rules()[0].kind, util::FaultKind::kDrop);
  EXPECT_DOUBLE_EQ(codec.rules()[0].magnitude, 3.0);
  EXPECT_EQ(codec.rules()[1].kind, util::FaultKind::kStall);
}

TEST(FaultPlan, EmptySpecParsesToEmptyPlan) {
  const auto plan = util::FaultPlan::parse("", 7);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_TRUE(plan->channel("detector").empty());
}

// ---------------------------------------------------- determinism --------

TEST(FaultPlan, DecisionsReplayBitIdenticallyInAnyQueryOrder) {
  const char* spec =
      "detector: stall p=0.3 ms=700; garbage p=0.2 n=3 | camera: black p=0.2";
  const auto a = util::FaultPlan::parse(spec, 4242);
  const auto b = util::FaultPlan::parse(spec, 4242);
  ASSERT_TRUE(a.has_value() && b.has_value());
  const util::FaultChannel ca = a->channel("detector");
  const util::FaultChannel cb = b->channel("detector");

  // Forward on one plan, reverse (and repeated) on the other: decisions are
  // a pure function of (seed, channel, rule, event), so order can't matter.
  for (int i = 0; i < 64; ++i) {
    const auto da = ca.decide(i);
    const auto db = cb.decide(63 - i);
    const auto da2 = ca.decide(i);  // re-query: no hidden state
    ASSERT_EQ(da.size(), da2.size());
    for (std::size_t k = 0; k < da.size(); ++k) {
      EXPECT_EQ(da[k].kind, da2[k].kind);
      EXPECT_EQ(da[k].rng_seed, da2[k].rng_seed);
    }
    const auto db_fwd = cb.decide(i);
    ASSERT_EQ(da.size(), db_fwd.size());
    for (std::size_t k = 0; k < da.size(); ++k) {
      EXPECT_EQ(da[k].kind, db_fwd[k].kind);
      EXPECT_EQ(da[k].rng_seed, db_fwd[k].rng_seed);
    }
    (void)db;
  }
}

TEST(FaultPlan, DifferentSeedsProduceDifferentSchedules) {
  const char* spec = "detector: drop p=0.5";
  const auto a = util::FaultPlan::parse(spec, 1);
  const auto b = util::FaultPlan::parse(spec, 2);
  const util::FaultChannel ca = a->channel("detector");
  const util::FaultChannel cb = b->channel("detector");
  int differing = 0;
  for (int i = 0; i < 128; ++i) {
    if (ca.decide(i).size() != cb.decide(i).size()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

// ------------------------------------------------- FaultyDetector --------

TEST(FaultyDetector, EmptyChannelIsATransparentPassThrough) {
  const video::SyntheticVideo video(small_scene());
  detect::SimulatedDetector plain(77);
  detect::FaultyDetector faulty(77);
  for (int i = 0; i < 5; ++i) {
    const auto a = plain.detect(video, i, detect::ModelSetting::kYolov3_512);
    const auto b = faulty.detect(video, i, detect::ModelSetting::kYolov3_512);
    EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
    ASSERT_EQ(a.detections.size(), b.detections.size());
    for (std::size_t k = 0; k < a.detections.size(); ++k) {
      EXPECT_EQ(a.detections[k].box, b.detections[k].box);
      EXPECT_EQ(a.detections[k].score, b.detections[k].score);
    }
  }
  EXPECT_EQ(faulty.faults_injected(), 0u);
}

TEST(FaultyDetector, LatencyAndStallFaultsInflateTheModeledLatency) {
  const video::SyntheticVideo video(small_scene());
  const auto plan = util::FaultPlan::parse(
      "detector: latency every=1 x=3; stall every=1 ms=500", 5);
  ASSERT_TRUE(plan.has_value());
  detect::SimulatedDetector plain(77);
  detect::FaultyDetector faulty(77, plan->channel("detector"));
  const auto a = plain.detect(video, 0, detect::ModelSetting::kYolov3_512);
  const auto b = faulty.detect(video, 0, detect::ModelSetting::kYolov3_512);
  EXPECT_DOUBLE_EQ(b.latency_ms, a.latency_ms * 3.0 + 500.0);
  EXPECT_EQ(faulty.faults_injected(), 2u);
}

TEST(FaultyDetector, DropSwallowsAndGarbageReplacesResults) {
  const video::SyntheticVideo video(small_scene());
  const auto plan = util::FaultPlan::parse(
      "detector: drop at=1; garbage at=2 n=6", 5);
  ASSERT_TRUE(plan.has_value());
  detect::FaultyDetector faulty(77, plan->channel("detector"));
  const auto clean = faulty.detect(video, 0, detect::ModelSetting::kYolov3_512);
  EXPECT_FALSE(clean.detections.empty());
  const auto dropped =
      faulty.detect(video, 1, detect::ModelSetting::kYolov3_512);
  EXPECT_TRUE(dropped.detections.empty());
  const auto garbage =
      faulty.detect(video, 2, detect::ModelSetting::kYolov3_512);
  ASSERT_EQ(garbage.detections.size(), 6u);
  for (const auto& d : garbage.detections) {
    EXPECT_FALSE(d.box.empty());
    EXPECT_LE(d.box.right(), video.frame_size().width + 1.0f);
    EXPECT_LE(d.box.bottom(), video.frame_size().height + 1.0f);
  }
  // Garbage payloads replay bit-identically.
  detect::FaultyDetector again(77, plan->channel("detector"));
  (void)again.detect(video, 0, detect::ModelSetting::kYolov3_512);
  (void)again.detect(video, 1, detect::ModelSetting::kYolov3_512);
  const auto garbage2 =
      again.detect(video, 2, detect::ModelSetting::kYolov3_512);
  ASSERT_EQ(garbage2.detections.size(), garbage.detections.size());
  for (std::size_t k = 0; k < garbage.detections.size(); ++k) {
    EXPECT_EQ(garbage.detections[k].box, garbage2.detections[k].box);
  }
}

TEST(FaultyDetector, ThrowFaultThrowsInjectedFault) {
  const video::SyntheticVideo video(small_scene());
  const auto plan = util::FaultPlan::parse("detector: throw at=4", 5);
  ASSERT_TRUE(plan.has_value());
  detect::FaultyDetector faulty(77, plan->channel("detector"));
  EXPECT_NO_THROW(faulty.detect(video, 3, detect::ModelSetting::kYolov3_512));
  EXPECT_THROW(faulty.detect(video, 4, detect::ModelSetting::kYolov3_512),
               detect::InjectedFault);
}

// ------------------------------------------------- FaultyTracker ---------

/// Arms `tracker` with frame 0's real detections and returns the frames.
struct TrackerRig {
  explicit TrackerRig(const video::SyntheticVideo& video)
      : store(video), frame0(store.get(0)), frame1(store.get(1)) {
    detect::SimulatedDetector detector(77);
    reference =
        detector.detect(video, 0, detect::ModelSetting::kYolov3_512).detections;
  }
  video::FrameStore store;
  video::FrameRef frame0;
  video::FrameRef frame1;
  std::vector<detect::Detection> reference;
};

TEST(FaultyTracker, EmptyChannelIsATransparentPassThrough) {
  const video::SyntheticVideo video(small_scene());
  TrackerRig rig(video);

  track::ObjectTracker plain;
  plain.set_reference(rig.frame0.image(), rig.reference);
  const auto plain_stats = plain.track_to(rig.frame1.image(), 1);

  track::ObjectTracker inner;
  track::FaultyTracker faulty(inner);
  faulty.set_reference_at(rig.frame0.image(), rig.reference, 0);
  const auto faulty_stats = faulty.track_frame(rig.frame1.image(), 1, 1);

  EXPECT_EQ(plain_stats.features_tracked, faulty_stats.features_tracked);
  EXPECT_DOUBLE_EQ(plain_stats.displacement_sum,
                   faulty_stats.displacement_sum);
  const auto a = plain.current_boxes();
  const auto b = faulty.current_boxes();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].box, b[k].box);
  }
  EXPECT_EQ(faulty.faults_injected(), 0u);
}

TEST(FaultyTracker, StarveThinsFeaturesWithoutInventingVelocity) {
  const video::SyntheticVideo video(small_scene());
  TrackerRig rig(video);
  const auto plan = util::FaultPlan::parse("tracker: starve at=1 frac=0.5", 5);
  ASSERT_TRUE(plan.has_value());

  track::ObjectTracker inner;
  track::FaultyTracker faulty(inner, plan->channel("tracker"));
  faulty.set_reference_at(rig.frame0.image(), rig.reference, 0);

  track::ObjectTracker control;
  control.set_reference(rig.frame0.image(), rig.reference);
  const auto full = control.track_to(rig.frame1.image(), 1);
  ASSERT_GT(full.features_tracked, 1);

  const auto starved = faulty.track_frame(rig.frame1.image(), 1, 1);
  EXPECT_EQ(starved.features_tracked,
            static_cast<int>(std::floor(full.features_tracked * 0.5)));
  EXPECT_NEAR(starved.displacement_sum, full.displacement_sum * 0.5, 1e-9);
  EXPECT_LT(faulty.live_feature_count(), inner.live_feature_count());
  EXPECT_EQ(faulty.faults_injected(), 1u);
  // Re-arming the reference clears the starvation.
  faulty.set_reference_at(rig.frame0.image(), rig.reference, 0);
  EXPECT_EQ(faulty.live_feature_count(), inner.live_feature_count());
}

TEST(FaultyTracker, DivergeDriftsTheReportedBoxes) {
  const video::SyntheticVideo video(small_scene());
  TrackerRig rig(video);
  const auto plan = util::FaultPlan::parse("tracker: diverge at=1 px=6", 5);
  ASSERT_TRUE(plan.has_value());

  track::ObjectTracker inner;
  track::FaultyTracker faulty(inner, plan->channel("tracker"));
  faulty.set_reference_at(rig.frame0.image(), rig.reference, 0);
  const auto stats = faulty.track_frame(rig.frame1.image(), 1, 1);

  const auto honest = inner.current_boxes();
  const auto drifted = faulty.current_boxes();
  ASSERT_EQ(honest.size(), drifted.size());
  ASSERT_FALSE(honest.empty());
  const float dx = drifted[0].box.left - honest[0].box.left;
  const float dy = drifted[0].box.top - honest[0].box.top;
  EXPECT_NEAR(std::hypot(dx, dy), 6.0, 1e-4);  // the full drift magnitude
  // The spurious flow inflates the displacement the velocity estimator
  // sees (that is what trips the adapter / MARLIN's change detector).
  track::ObjectTracker control;
  control.set_reference(rig.frame0.image(), rig.reference);
  const auto full = control.track_to(rig.frame1.image(), 1);
  EXPECT_GT(stats.displacement_sum, full.displacement_sum);
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

TEST(FaultyTracker, NanFlowFreezesBoxesAndZeroesTheStep) {
  const video::SyntheticVideo video(small_scene());
  TrackerRig rig(video);
  const auto plan = util::FaultPlan::parse("tracker: nan at=1", 5);
  ASSERT_TRUE(plan.has_value());

  track::ObjectTracker inner;
  track::FaultyTracker faulty(inner, plan->channel("tracker"));
  faulty.set_reference_at(rig.frame0.image(), rig.reference, 0);
  const auto before = faulty.current_boxes();
  const auto stats = faulty.track_frame(rig.frame1.image(), 1, 1);

  // The step was rejected: no features, no motion, boxes as they stood.
  EXPECT_EQ(stats.features_tracked, 0);
  EXPECT_DOUBLE_EQ(stats.displacement_sum, 0.0);
  const auto after = faulty.current_boxes();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t k = 0; k < before.size(); ++k) {
    EXPECT_EQ(before[k].box, after[k].box);
  }
  EXPECT_EQ(faulty.faults_injected(), 1u);
}

TEST(FaultyTracker, ThrowFaultThrowsInjectedFault) {
  const video::SyntheticVideo video(small_scene());
  TrackerRig rig(video);
  const auto plan = util::FaultPlan::parse("tracker: throw at=1", 5);
  ASSERT_TRUE(plan.has_value());
  track::ObjectTracker inner;
  track::FaultyTracker faulty(inner, plan->channel("tracker"));
  faulty.set_reference_at(rig.frame0.image(), rig.reference, 0);
  EXPECT_THROW(faulty.track_frame(rig.frame1.image(), 1, 1),
               util::InjectedFault);
}

// ------------------------------------------------- camera glitches -------

TEST(FrameGlitch, BlackFrameIsBlackAndLeavesTheOriginalIntact) {
  video::SyntheticVideo video(small_scene());
  video::FrameStore store(video);
  const video::FrameRef original = store.get(0);
  const video::FrameRef black = video::glitch_black(original);
  EXPECT_EQ(black.index, original.index);
  EXPECT_EQ(black.image().size(), original.image().size());
  bool any_nonzero_black = false;
  bool any_nonzero_original = false;
  for (int y = 0; y < original.image().height(); ++y) {
    for (int x = 0; x < original.image().width(); ++x) {
      any_nonzero_black |= black.image().at(x, y) != 0;
      any_nonzero_original |= original.image().at(x, y) != 0;
    }
  }
  EXPECT_FALSE(any_nonzero_black);
  EXPECT_TRUE(any_nonzero_original);  // the shared raster was not mutated
}

TEST(FrameGlitch, CorruptionIsDeterministicFromItsSeed) {
  video::SyntheticVideo video(small_scene());
  video::FrameStore store(video);
  const video::FrameRef original = store.get(0);
  const video::FrameRef a = video::glitch_corrupt(original, 80.0, 123);
  const video::FrameRef b = video::glitch_corrupt(original, 80.0, 123);
  const video::FrameRef c = video::glitch_corrupt(original, 80.0, 456);
  int diff_ab = 0, diff_ac = 0, diff_ao = 0;
  for (int y = 0; y < original.image().height(); ++y) {
    for (int x = 0; x < original.image().width(); ++x) {
      diff_ab += a.image().at(x, y) != b.image().at(x, y);
      diff_ac += a.image().at(x, y) != c.image().at(x, y);
      diff_ao += a.image().at(x, y) != original.image().at(x, y);
    }
  }
  EXPECT_EQ(diff_ab, 0);   // same seed: bit-identical corruption
  EXPECT_GT(diff_ac, 0);   // different seed: different corruption
  EXPECT_GT(diff_ao, 100); // and it really corrupted a band of pixels
}

}  // namespace
}  // namespace adavp
