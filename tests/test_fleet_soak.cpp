// Deterministic fleet soak (ISSUE.md satellite 4, labels "concurrency;soak"):
// a fleet with seeded faults on a subset of streams must (a) never deadlock,
// (b) produce a result for every frame of every admitted stream, (c) be
// bit-identical across repeats, and (d) leave the healthy streams' digests
// unperturbed by their faulty neighbors.
//
// Digest isolation only holds for GPU-time-neutral fault kinds — detector
// drop/garbage alter *detections*, camera black/corrupt alter *pixels*, but
// none of them alter latency draws, so the shared FleetGpu's virtual-time
// schedule (and therefore every healthy stream's timing) is identical to an
// all-healthy run. Stall/latency/hiccup faults would perturb the shared
// schedule and are deliberately excluded here.

#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/fleet.h"
#include "util/fault_plan.h"

namespace adavp::core {
namespace {

class Digest {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  template <typename T>
  void pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&value, sizeof(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

std::uint64_t digest_run(const RunResult& run) {
  Digest d;
  d.pod<std::uint64_t>(run.frames.size());
  for (const FrameResult& f : run.frames) {
    d.pod<std::int32_t>(f.frame_index);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.source));
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.setting));
    d.pod<double>(f.staleness_ms);
    d.pod<std::uint64_t>(f.boxes.size());
    for (const metrics::LabeledBox& b : f.boxes) {
      d.pod<float>(b.box.left);
      d.pod<float>(b.box.top);
      d.pod<float>(b.box.width);
      d.pod<float>(b.box.height);
      d.pod<std::uint8_t>(static_cast<std::uint8_t>(b.cls));
    }
  }
  d.pod<std::uint64_t>(run.cycles.size());
  for (const CycleRecord& c : run.cycles) {
    d.pod<std::int32_t>(c.detected_frame);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(c.setting));
    d.pod<double>(c.start_ms);
    d.pod<double>(c.end_ms);
    d.pod<std::int32_t>(c.frames_in_buffer);
    d.pod<std::int32_t>(c.frames_tracked);
    d.pod<double>(c.mean_velocity);
  }
  d.pod<double>(run.energy.gpu_wh);
  d.pod<double>(run.energy.cpu_wh);
  d.pod<double>(run.timeline_ms);
  return d.value();
}

constexpr int kStreams = 6;
constexpr int kFaulty[] = {1, 4};

util::FaultPlan neutral_plan(int which) {
  // GPU-time-neutral by construction: no stall/latency/hiccup rules.
  const char* spec =
      which == 0 ? "detector: drop p=0.1; garbage p=0.05 n=3"
                 : "camera: black every=30; corrupt p=0.08 amp=50";
  const auto plan = util::FaultPlan::parse(spec, 0xFEED + which);
  EXPECT_TRUE(plan.has_value()) << spec;
  return plan.value_or(util::FaultPlan{});
}

std::vector<FleetStreamOptions> soak_fleet(const util::FaultPlan* plans) {
  std::vector<FleetStreamOptions> streams(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    auto& s = streams[static_cast<std::size_t>(i)];
    s.scene.width = 128;
    s.scene.height = 96;
    s.scene.frame_count = 120;
    s.scene.initial_objects = 3;
    s.scene.max_objects = 4;
    s.scene.seed = static_cast<std::uint64_t>(700 + i);
    s.engine.seed = static_cast<std::uint64_t>(8800 + i);
    s.setting = detect::ModelSetting::kYolov3Tiny_320;
    s.cadence_ms = 400.0;
    s.deadline_ms = 900.0;
    // self_degrade stays false fleet-wide: a stream that changes its GPU
    // request pattern in response to faults would (legitimately) perturb
    // the shared schedule and void the digest-isolation claim below.
  }
  if (plans != nullptr) {
    streams[kFaulty[0]].engine.fault_plan = &plans[0];
    streams[kFaulty[1]].engine.fault_plan = &plans[1];
  }
  return streams;
}

bool is_faulty(int id) { return id == kFaulty[0] || id == kFaulty[1]; }

TEST(FleetSoak, FaultedFleetCompletesDeterministicallyWithDigestIsolation) {
  const util::FaultPlan plans[2] = {neutral_plan(0), neutral_plan(1)};
  FleetOptions options;
  options.gpu.max_batch = 4;

  const FleetResult healthy = run_fleet(soak_fleet(nullptr), options);
  const FleetResult faulted = run_fleet(soak_fleet(plans), options);
  const FleetResult repeat = run_fleet(soak_fleet(plans), options);

  ASSERT_EQ(faulted.streams.size(), static_cast<std::size_t>(kStreams));
  ASSERT_EQ(faulted.admitted + faulted.degraded, kStreams);

  for (int i = 0; i < kStreams; ++i) {
    const FleetStreamResult& s = faulted.streams[static_cast<std::size_t>(i)];
    // (a)+(b): the run finished (joining run_fleet proves no deadlock) and
    // every frame carries a result.
    ASSERT_EQ(s.run.frames.size(), 120u) << s.name;
    for (const FrameResult& f : s.run.frames) {
      EXPECT_NE(f.source, ResultSource::kNone) << s.name;
    }
    // (c): bit-identical across repeats, faults included.
    EXPECT_EQ(digest_run(s.run),
              digest_run(repeat.streams[static_cast<std::size_t>(i)].run))
        << s.name;
    if (is_faulty(i)) {
      EXPECT_FALSE(s.run.status.ok()) << s.name;
      EXPECT_GT(s.run.faults_injected, 0u) << s.name;
    } else {
      // (d): a healthy stream cannot tell its neighbors were faulted —
      // its entire observable run matches the all-healthy fleet.
      EXPECT_TRUE(s.run.status.ok()) << s.run.status.to_string();
      EXPECT_EQ(s.run.faults_injected, 0u) << s.name;
      EXPECT_EQ(digest_run(s.run),
                digest_run(healthy.streams[static_cast<std::size_t>(i)].run))
          << s.name;
    }
  }
  EXPECT_FALSE(faulted.status.ok());
  EXPECT_FALSE(faulted.status.failed());  // degraded, not dead
}

TEST(FleetSoak, DeterministicWithBatchingDisabled) {
  const util::FaultPlan plans[2] = {neutral_plan(0), neutral_plan(1)};
  FleetOptions options;
  options.gpu.max_batch = 1;  // batch of one is bit-identical to solo grants
  const FleetResult a = run_fleet(soak_fleet(plans), options);
  const FleetResult b = run_fleet(soak_fleet(plans), options);
  ASSERT_EQ(a.streams.size(), b.streams.size());
  for (std::size_t i = 0; i < a.streams.size(); ++i) {
    EXPECT_EQ(digest_run(a.streams[i].run), digest_run(b.streams[i].run));
  }
  EXPECT_EQ(a.gpu.batches, a.gpu.requests);  // max_batch=1 => no coalescing
}

}  // namespace
}  // namespace adavp::core
