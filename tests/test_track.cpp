#include <gtest/gtest.h>

#include "detect/calibration.h"
#include "metrics/matching.h"
#include "track/frame_selection.h"
#include "track/latency.h"
#include "track/tracker.h"
#include "video/scene.h"

namespace adavp::track {
namespace {

video::SceneConfig tracking_scene(std::uint64_t seed = 3, int frames = 40,
                                  double speed = 1.0) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 3;
  cfg.max_objects = 4;
  cfg.speed_mean = speed;
  cfg.speed_jitter = 0.05;  // near-constant velocity: easy to track
  return cfg;
}

std::vector<detect::Detection> truth_as_detections(
    const video::SyntheticVideo& video, int frame) {
  std::vector<detect::Detection> dets;
  for (const auto& gt : video.ground_truth(frame)) {
    dets.push_back({gt.box, gt.cls, 1.0f});
  }
  return dets;
}

// ------------------------------------------------------------ Tracker ----

TEST(ObjectTrackerTest, StartsWithoutReference) {
  ObjectTracker tracker;
  EXPECT_FALSE(tracker.has_reference());
  EXPECT_EQ(tracker.object_count(), 0);
  // Tracking without a reference is a harmless no-op.
  const vision::ImageU8 frame(64, 64, 100);
  const TrackStepStats stats = tracker.track_to(frame, 1);
  EXPECT_EQ(stats.features_tracked, 0);
}

TEST(ObjectTrackerTest, ExtractsFeaturesInsideBoxes) {
  const video::SyntheticVideo video(tracking_scene());
  ObjectTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  EXPECT_TRUE(tracker.has_reference());
  EXPECT_EQ(tracker.object_count(),
            static_cast<int>(video.ground_truth(0).size()));
  EXPECT_GT(tracker.live_feature_count(), 0);
}

TEST(ObjectTrackerTest, TracksObjectsAcrossFrames) {
  const video::SyntheticVideo video(tracking_scene(5, 20, 1.2));
  ObjectTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));

  for (int f = 1; f <= 6; ++f) {
    const TrackStepStats stats = tracker.track_to(video.render(f), 1);
    EXPECT_GT(stats.features_tracked, 0) << "frame " << f;
  }
  // After 6 frames the tracked boxes should still match ground truth well.
  const auto boxes = tracker.current_boxes();
  const double f1 = metrics::score_boxes(boxes, video.ground_truth(6), 0.5).f1();
  EXPECT_GT(f1, 0.6);
}

TEST(ObjectTrackerTest, TrackingQualityDegradesOverTime) {
  const video::SyntheticVideo video(tracking_scene(7, 60, 1.8));
  ObjectTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));

  double early = -1.0;
  double late = -1.0;
  for (int f = 1; f < 45; ++f) {
    tracker.track_to(video.render(f), 1);
    const double f1 =
        metrics::score_boxes(tracker.current_boxes(), video.ground_truth(f), 0.5)
            .f1();
    if (f == 4) early = f1;
    if (f == 44) late = f1;
  }
  // Observation 3: accuracy decays with tracked distance (new objects
  // appear, drift accumulates).
  EXPECT_LE(late, early + 0.05);
}

TEST(ObjectTrackerTest, HandlesFrameGaps) {
  const video::SyntheticVideo video(tracking_scene(9, 20, 1.0));
  ObjectTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  const TrackStepStats stats = tracker.track_to(video.render(4), 4);
  EXPECT_EQ(stats.frame_gap, 4);
  EXPECT_GT(stats.features_tracked, 0);
  const double f1 =
      metrics::score_boxes(tracker.current_boxes(), video.ground_truth(4), 0.5)
          .f1();
  EXPECT_GT(f1, 0.5);
}

TEST(ObjectTrackerTest, ReferenceResetsState) {
  const video::SyntheticVideo video(tracking_scene(11, 30, 1.0));
  ObjectTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  for (int f = 1; f < 10; ++f) tracker.track_to(video.render(f), 1);
  // Re-calibrate from frame 10's exact boxes: accuracy returns to ~1.
  tracker.set_reference(video.render(10), truth_as_detections(video, 10));
  const double f1 =
      metrics::score_boxes(tracker.current_boxes(), video.ground_truth(10), 0.5)
          .f1();
  EXPECT_GT(f1, 0.99);
}

TEST(ObjectTrackerTest, EmptyDetectionsTrackNothing) {
  const video::SyntheticVideo video(tracking_scene());
  ObjectTracker tracker;
  tracker.set_reference(video.render(0), {});
  EXPECT_EQ(tracker.object_count(), 0);
  const TrackStepStats stats = tracker.track_to(video.render(1), 1);
  EXPECT_EQ(stats.features_tracked, 0);
  EXPECT_TRUE(tracker.current_boxes().empty());
}

TEST(ObjectTrackerTest, DisplacementSumTracksMotionSpeed) {
  // Faster scene => larger per-step displacement sum per feature.
  const video::SyntheticVideo slow(tracking_scene(13, 12, 0.3));
  const video::SyntheticVideo fast(tracking_scene(13, 12, 2.5));
  double slow_v = 0.0;
  double fast_v = 0.0;
  {
    ObjectTracker tracker;
    tracker.set_reference(slow.render(0), truth_as_detections(slow, 0));
    const auto stats = tracker.track_to(slow.render(1), 1);
    ASSERT_GT(stats.features_tracked, 0);
    slow_v = stats.displacement_sum / stats.features_tracked;
  }
  {
    ObjectTracker tracker;
    tracker.set_reference(fast.render(0), truth_as_detections(fast, 0));
    const auto stats = tracker.track_to(fast.render(1), 1);
    ASSERT_GT(stats.features_tracked, 0);
    fast_v = stats.displacement_sum / stats.features_tracked;
  }
  EXPECT_GT(fast_v, slow_v * 1.5);
}

TEST(ObjectTrackerTest, RespectsFeatureBudgets) {
  TrackerParams params;
  params.max_features = 20;
  params.max_features_per_box = 4;
  const video::SyntheticVideo video(tracking_scene(15));
  ObjectTracker tracker(params);
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  EXPECT_LE(tracker.live_feature_count(), 20);
  EXPECT_LE(tracker.live_feature_count(), 4 * tracker.object_count());
}

// ----------------------------------------------------- FrameSelection ----

TEST(FrameSelection, SelectsFractionAtRegularIntervals) {
  TrackingFrameSelector selector(0.5);
  const auto offsets = selector.select(10);
  EXPECT_EQ(offsets.size(), 5u);
  EXPECT_EQ(offsets.back(), 10);  // newest frame always tracked
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_GT(offsets[i], offsets[i - 1]);  // strictly increasing
  }
}

TEST(FrameSelection, FullFractionTracksEverything) {
  TrackingFrameSelector selector(1.0);
  const auto offsets = selector.select(5);
  EXPECT_EQ(offsets, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(FrameSelection, AlwaysTracksAtLeastOne) {
  TrackingFrameSelector selector(0.05);
  const auto offsets = selector.select(3);
  ASSERT_EQ(offsets.size(), 1u);
  EXPECT_EQ(offsets[0], 3);
}

TEST(FrameSelection, EmptyBufferSelectsNothing) {
  TrackingFrameSelector selector(0.5);
  EXPECT_TRUE(selector.select(0).empty());
  EXPECT_TRUE(selector.select(-3).empty());
}

TEST(FrameSelection, UpdateFollowsMeasuredThroughput) {
  TrackingFrameSelector selector(1.0);
  selector.update(3, 12);  // tracked 3 of 12 last cycle
  EXPECT_NEAR(selector.fraction(), 0.25, 1e-12);
  const auto offsets = selector.select(12);
  EXPECT_EQ(offsets.size(), 3u);
}

TEST(FrameSelection, UpdateIgnoresDegenerateCycles) {
  TrackingFrameSelector selector(0.5);
  selector.update(0, 10);
  selector.update(5, 0);
  EXPECT_NEAR(selector.fraction(), 0.5, 1e-12);
}

TEST(FrameSelection, FractionClamped) {
  TrackingFrameSelector selector(0.5);
  selector.update(20, 10);  // nonsense ratio > 1
  EXPECT_LE(selector.fraction(), 1.0);
}

// ------------------------------------------------------- LatencyModel ----

TEST(TrackLatency, WithinTableIIRanges) {
  TrackLatencyModel model(3);
  for (int i = 0; i < 200; ++i) {
    const double extract = model.feature_extraction_ms();
    EXPECT_GT(extract, 20.0);
    EXPECT_LT(extract, 60.0);
    const double track = model.tracking_ms(4, 40);
    EXPECT_GE(track, detect::kTrackingMinMs);
    EXPECT_LE(track, detect::kTrackingMaxMs);
    const double overlay = model.overlay_ms();
    EXPECT_GT(overlay, 30.0);
    EXPECT_LT(overlay, 70.0);
  }
}

TEST(TrackLatency, GrowsWithLoad) {
  EXPECT_LT(TrackLatencyModel::mean_track_and_overlay_ms(1, 5),
            TrackLatencyModel::mean_track_and_overlay_ms(8, 80));
  // The paper's §I: tracking+rendering of one frame is 57-70 ms.
  EXPECT_GE(TrackLatencyModel::mean_track_and_overlay_ms(0, 0), 57.0);
  EXPECT_LE(TrackLatencyModel::mean_track_and_overlay_ms(8, 80), 70.0);
}

TEST(ObjectTrackerTest, SinglePointModeUsesOneFeaturePerBox) {
  // §V fast path: one feature per bounding box.
  TrackerParams params;
  params.single_point_per_box = true;
  const video::SyntheticVideo video(tracking_scene(21));
  ObjectTracker tracker(params);
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  EXPECT_LE(tracker.live_feature_count(), tracker.object_count());
  EXPECT_GT(tracker.live_feature_count(), 0);
  // Tracking still works, just with less redundancy.
  const TrackStepStats stats = tracker.track_to(video.render(1), 1);
  EXPECT_GT(stats.features_tracked, 0);
}

TEST(ObjectTrackerTest, ForwardBackwardCheckKeepsGoodFeatures) {
  // On a clean translating scene FB validation should pass most features
  // (their round trip lands back home), so tracking still works...
  TrackerParams params;
  params.forward_backward_check = true;
  params.fb_threshold = 1.0f;
  const video::SyntheticVideo video(tracking_scene(23, 12, 0.8));
  ObjectTracker tracker(params);
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  const TrackStepStats stats = tracker.track_to(video.render(1), 1);
  EXPECT_GT(stats.features_tracked, 0);
  // ...and it can only ever *reduce* the surviving set vs no check.
  ObjectTracker baseline;
  baseline.set_reference(video.render(0), truth_as_detections(video, 0));
  const TrackStepStats base = baseline.track_to(video.render(1), 1);
  EXPECT_LE(stats.features_tracked, base.features_tracked);
}

TEST(TrackLatency, ExceedsFrameInterval) {
  // Observation 4: per-frame tracking + overlay cannot keep 30 FPS.
  EXPECT_GT(TrackLatencyModel::mean_track_and_overlay_ms(3, 30),
            detect::kFrameIntervalMs);
}

}  // namespace
}  // namespace adavp::track
