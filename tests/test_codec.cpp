#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "vision/good_features.h"
#include "video/scene.h"
#include "vision/codec.h"

namespace adavp::vision {
namespace {

ImageU8 test_frame(int w = 128, int h = 96) {
  video::SceneConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.frame_count = 1;
  cfg.seed = 9;
  cfg.initial_objects = 3;
  return video::SyntheticVideo(cfg).render(0);
}

TEST(Dct, RoundTripIsIdentity) {
  util::Rng rng(3);
  float block[64];
  for (float& v : block) v = static_cast<float>(rng.uniform(-128.0, 127.0));
  float coeffs[64];
  float back[64];
  dct8x8(block, coeffs);
  idct8x8(coeffs, back);
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(back[i], block[i], 1e-2f) << "index " << i;
  }
}

TEST(Dct, ConstantBlockIsPureDc) {
  float block[64];
  for (float& v : block) v = 50.0f;
  float coeffs[64];
  dct8x8(block, coeffs);
  EXPECT_NEAR(coeffs[0], 50.0f * 8.0f, 1e-2f);  // DC = N * mean
  for (int i = 1; i < 64; ++i) {
    EXPECT_NEAR(coeffs[i], 0.0f, 1e-3f);
  }
}

TEST(Dct, ParsevalEnergyPreserved) {
  util::Rng rng(5);
  float block[64];
  float coeffs[64];
  for (float& v : block) v = static_cast<float>(rng.uniform(-100.0, 100.0));
  dct8x8(block, coeffs);
  double spatial = 0.0;
  double spectral = 0.0;
  for (int i = 0; i < 64; ++i) {
    spatial += block[i] * block[i];
    spectral += coeffs[i] * coeffs[i];
  }
  EXPECT_NEAR(spectral / spatial, 1.0, 1e-3);
}

TEST(Codec, RoundTripHighQualityIsNearLossless) {
  const ImageU8 frame = test_frame();
  const auto encoded = encode_frame(frame, 95);
  const ImageU8 decoded = decode_frame(encoded);
  ASSERT_EQ(decoded.width(), frame.width());
  ASSERT_EQ(decoded.height(), frame.height());
  EXPECT_GT(psnr(frame, decoded), 38.0);
}

TEST(Codec, CompressesBelowRawSize) {
  const ImageU8 frame = test_frame();
  const std::size_t raw = frame.pixels().size();
  EXPECT_LT(encode_frame(frame, 75).size(), raw);
  EXPECT_LT(encode_frame(frame, 30).size(), raw / 2);
}

TEST(Codec, QualityTradesSizeForPsnr) {
  const ImageU8 frame = test_frame();
  const auto q30 = encode_frame(frame, 30);
  const auto q90 = encode_frame(frame, 90);
  EXPECT_LT(q30.size(), q90.size());
  EXPECT_LT(psnr(frame, decode_frame(q30)), psnr(frame, decode_frame(q90)));
  EXPECT_GT(psnr(frame, decode_frame(q30)), 24.0);  // still usable
}

TEST(Codec, NonMultipleOfEightDimensions) {
  const ImageU8 frame = test_frame(61, 45);
  const ImageU8 decoded = decode_frame(encode_frame(frame, 85));
  ASSERT_EQ(decoded.width(), 61);
  ASSERT_EQ(decoded.height(), 45);
  EXPECT_GT(psnr(frame, decoded), 30.0);
}

TEST(Codec, EmptyAndMalformedInputs) {
  EXPECT_TRUE(encode_frame(ImageU8{}, 75).empty());
  EXPECT_TRUE(decode_frame({}).empty());
  const std::vector<std::uint8_t> garbage = {'X', 'Y', 1, 0, 1, 0, 75};
  EXPECT_TRUE(decode_frame(garbage).empty());
  // Truncated valid stream.
  auto encoded = encode_frame(test_frame(32, 32), 75);
  encoded.resize(encoded.size() / 2);
  EXPECT_TRUE(decode_frame(encoded).empty());
}

TEST(Codec, PsnrBasics) {
  const ImageU8 frame = test_frame(32, 32);
  EXPECT_DOUBLE_EQ(psnr(frame, frame), 99.0);
  ImageU8 other = frame;
  other.at(0, 0) = static_cast<std::uint8_t>(other.at(0, 0) ^ 0xFF);
  EXPECT_LT(psnr(frame, other), 99.0);
  EXPECT_DOUBLE_EQ(psnr(frame, ImageU8(16, 16)), 0.0);
}

TEST(Codec, DecodedFrameStillTrackable) {
  // The codec must preserve enough texture for the vision substrate: the
  // offload path detects/tracks on decoded frames.
  video::SceneConfig cfg;
  cfg.width = 128;
  cfg.height = 96;
  cfg.frame_count = 2;
  cfg.seed = 21;
  const video::SyntheticVideo video(cfg);
  const ImageU8 decoded = decode_frame(encode_frame(video.render(0), 80));
  GoodFeaturesParams params;  // from good_features.h via codec test TU
  const auto corners = good_features_to_track(decoded, params);
  EXPECT_GT(corners.size(), 5u);
}

TEST(Codec, TypicalCompressedSizeMatchesOffloadModel) {
  // The offload baseline assumes ~40 kB per compressed 384x216 frame; the
  // real codec at default quality should be in that ballpark (within 3x).
  video::SceneConfig cfg;
  cfg.frame_count = 1;
  cfg.seed = 33;
  const video::SyntheticVideo video(cfg);
  const auto encoded = encode_frame(video.render(0), 75);
  EXPECT_GT(encoded.size(), 13000u);
  EXPECT_LT(encoded.size(), 120000u);
}

}  // namespace
}  // namespace adavp::vision
