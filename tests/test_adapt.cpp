#include <gtest/gtest.h>

#include "adapt/adapter.h"
#include "adapt/threshold_trainer.h"
#include "adapt/velocity.h"
#include "util/rng.h"

namespace adavp::adapt {
namespace {

using detect::ModelSetting;

// ----------------------------------------------------------- Velocity ----

track::TrackStepStats step(double displacement_sum, int features, int gap) {
  track::TrackStepStats s;
  s.displacement_sum = displacement_sum;
  s.features_tracked = features;
  s.frame_gap = gap;
  return s;
}

TEST(VelocityEstimatorTest, Eq3SingleStep) {
  // 10 features moved a total of 25 px across a 1-frame gap: v = 2.5.
  EXPECT_DOUBLE_EQ(VelocityEstimator::step_velocity(step(25.0, 10, 1)), 2.5);
}

TEST(VelocityEstimatorTest, Eq3NormalizesByFrameGap) {
  // Same displacement across a 5-frame gap: per-adjacent-frame v = 0.5.
  EXPECT_DOUBLE_EQ(VelocityEstimator::step_velocity(step(25.0, 10, 5)), 0.5);
}

TEST(VelocityEstimatorTest, NoFeaturesIsZero) {
  EXPECT_DOUBLE_EQ(VelocityEstimator::step_velocity(step(25.0, 0, 1)), 0.0);
}

TEST(VelocityEstimatorTest, MeanOverCycle) {
  VelocityEstimator estimator;
  estimator.add_step(step(10.0, 10, 1));  // v = 1.0
  estimator.add_step(step(30.0, 10, 1));  // v = 3.0
  estimator.add_step(step(0.0, 0, 1));    // ignored: nothing tracked
  EXPECT_EQ(estimator.step_count(), 2);
  EXPECT_DOUBLE_EQ(estimator.mean_velocity(), 2.0);
}

TEST(VelocityEstimatorTest, ResetClears) {
  VelocityEstimator estimator;
  estimator.add_step(step(10.0, 10, 1));
  estimator.reset();
  EXPECT_EQ(estimator.step_count(), 0);
  EXPECT_DOUBLE_EQ(estimator.mean_velocity(), 0.0);
}

// ----------------------------------------------------- ThresholdSet ------

TEST(ThresholdSetTest, ClassifiesByBand) {
  const ThresholdSet set{1.0, 2.0, 3.0};
  EXPECT_EQ(set.classify(0.5), ModelSetting::kYolov3_608);
  EXPECT_EQ(set.classify(1.0), ModelSetting::kYolov3_608);  // inclusive
  EXPECT_EQ(set.classify(1.5), ModelSetting::kYolov3_512);
  EXPECT_EQ(set.classify(2.5), ModelSetting::kYolov3_416);
  EXPECT_EQ(set.classify(9.0), ModelSetting::kYolov3_320);
}

// -------------------------------------------------- ThresholdTrainer -----

std::vector<TrainingSample> planted_samples(double v1, double v2, double v3,
                                            int per_class, double noise,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<TrainingSample> samples;
  auto emit = [&](double lo, double hi, ModelSetting label) {
    for (int i = 0; i < per_class; ++i) {
      double v = rng.uniform(lo, hi) + rng.gaussian(0.0, noise);
      samples.push_back({std::max(0.0, v), label});
    }
  };
  emit(0.0, v1, ModelSetting::kYolov3_608);
  emit(v1, v2, ModelSetting::kYolov3_512);
  emit(v2, v3, ModelSetting::kYolov3_416);
  emit(v3, v3 + 2.0, ModelSetting::kYolov3_320);
  return samples;
}

TEST(ThresholdTrainerTest, RecoversPlantedThresholdsCleanData) {
  const auto samples = planted_samples(1.0, 2.0, 3.0, 200, 0.0, 42);
  const ThresholdSet set = ThresholdTrainer::train(samples);
  EXPECT_NEAR(set.v1, 1.0, 0.1);
  EXPECT_NEAR(set.v2, 2.0, 0.1);
  EXPECT_NEAR(set.v3, 3.0, 0.1);
  EXPECT_GT(ThresholdTrainer::training_accuracy(set, samples), 0.98);
}

TEST(ThresholdTrainerTest, ToleratesLabelNoise) {
  const auto samples = planted_samples(1.0, 2.0, 3.0, 300, 0.15, 7);
  const ThresholdSet set = ThresholdTrainer::train(samples);
  EXPECT_NEAR(set.v1, 1.0, 0.25);
  EXPECT_NEAR(set.v2, 2.0, 0.25);
  EXPECT_NEAR(set.v3, 3.0, 0.25);
  EXPECT_GT(ThresholdTrainer::training_accuracy(set, samples), 0.8);
}

TEST(ThresholdTrainerTest, MonotoneBoundaries) {
  // Adversarial: shuffled labels can produce crossing splits; the trainer
  // must still emit v1 <= v2 <= v3.
  util::Rng rng(11);
  std::vector<TrainingSample> samples;
  const ModelSetting labels[] = {
      ModelSetting::kYolov3_320, ModelSetting::kYolov3_416,
      ModelSetting::kYolov3_512, ModelSetting::kYolov3_608};
  for (int i = 0; i < 200; ++i) {
    samples.push_back({rng.uniform(0.0, 4.0), labels[rng.uniform_int(0, 3)]});
  }
  const ThresholdSet set = ThresholdTrainer::train(samples);
  EXPECT_LE(set.v1, set.v2);
  EXPECT_LE(set.v2, set.v3);
}

TEST(ThresholdTrainerTest, EmptyTrainingDefaultsToLargestSize) {
  const ThresholdSet set = ThresholdTrainer::train({});
  EXPECT_EQ(set.classify(1e9), ModelSetting::kYolov3_608);
}

TEST(ThresholdTrainerTest, SingleClassData) {
  std::vector<TrainingSample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back({0.1 * i, ModelSetting::kYolov3_512});
  }
  const ThresholdSet set = ThresholdTrainer::train(samples);
  EXPECT_EQ(ThresholdTrainer::training_accuracy(set, samples), 1.0);
}

// ------------------------------------------------------- ModelAdapter ----

TEST(ModelAdapterTest, SharedThresholds) {
  const ModelAdapter adapter(ThresholdSet{1.0, 2.0, 3.0});
  EXPECT_EQ(adapter.next_setting(0.5, ModelSetting::kYolov3_320),
            ModelSetting::kYolov3_608);
  EXPECT_EQ(adapter.next_setting(2.5, ModelSetting::kYolov3_608),
            ModelSetting::kYolov3_416);
  EXPECT_EQ(adapter.next_setting(10.0, ModelSetting::kYolov3_512),
            ModelSetting::kYolov3_320);
}

TEST(ModelAdapterTest, PerSizeThresholdsSelectedByCurrentSetting) {
  std::array<ThresholdSet, 4> per_size;
  per_size[0] = {10.0, 20.0, 30.0};  // thresholds when current is 320
  per_size[1] = {1.0, 2.0, 3.0};
  per_size[2] = {1.0, 2.0, 3.0};
  per_size[3] = {0.1, 0.2, 0.3};     // thresholds when current is 608
  const ModelAdapter adapter(per_size);
  // Velocity 5: under 320's thresholds that is "slow" -> 608.
  EXPECT_EQ(adapter.next_setting(5.0, ModelSetting::kYolov3_320),
            ModelSetting::kYolov3_608);
  // Same velocity under 608's thresholds is "fast" -> 320.
  EXPECT_EQ(adapter.next_setting(5.0, ModelSetting::kYolov3_608),
            ModelSetting::kYolov3_320);
}

TEST(ModelAdapterTest, HysteresisDampsBoundaryOscillation) {
  ModelAdapter adapter(ThresholdSet{1.0, 2.0, 3.0});
  adapter.set_hysteresis_margin(0.2);
  // Just over v1 (1.0): inside the 20% band -> stay at 608.
  EXPECT_EQ(adapter.next_setting(1.05, ModelSetting::kYolov3_608),
            ModelSetting::kYolov3_608);
  // Clearly over the band -> switch.
  EXPECT_EQ(adapter.next_setting(1.5, ModelSetting::kYolov3_608),
            ModelSetting::kYolov3_512);
  // No hysteresis: even the marginal value switches.
  adapter.set_hysteresis_margin(0.0);
  EXPECT_EQ(adapter.next_setting(1.05, ModelSetting::kYolov3_608),
            ModelSetting::kYolov3_512);
}

TEST(ModelAdapterTest, HysteresisNeverBlocksSameSetting) {
  ModelAdapter adapter(ThresholdSet{1.0, 2.0, 3.0});
  adapter.set_hysteresis_margin(0.5);
  EXPECT_EQ(adapter.next_setting(0.2, ModelSetting::kYolov3_608),
            ModelSetting::kYolov3_608);
}

}  // namespace
}  // namespace adavp::adapt
