#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "util/rng.h"
#include "vision/image_ops.h"
#include "vision/optical_flow.h"

namespace adavp::vision {
namespace {

/// Smooth random texture so Lucas-Kanade has gradients everywhere.
ImageF32 smooth_texture(int w, int h, std::uint64_t seed) {
  util::Rng rng(seed);
  ImageF32 img(w, h);
  for (auto& px : img.pixels()) {
    px = static_cast<float>(rng.uniform(0.0, 255.0));
  }
  // Heavy smoothing turns white noise into trackable blobs.
  return smooth5(smooth5(smooth5(img)));
}

/// Shifts an image by (dx, dy) with bilinear resampling.
ImageU8 shift_image(const ImageF32& src, float dx, float dy) {
  ImageF32 out(src.width(), src.height());
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      out.at(x, y) = sample_bilinear(src, static_cast<float>(x) - dx,
                                     static_cast<float>(y) - dy);
    }
  }
  return to_u8(out);
}

std::vector<geometry::Point2f> grid_points(int w, int h, int margin, int step) {
  std::vector<geometry::Point2f> pts;
  for (int y = margin; y < h - margin; y += step) {
    for (int x = margin; x < w - margin; x += step) {
      pts.push_back({static_cast<float>(x), static_cast<float>(y)});
    }
  }
  return pts;
}

TEST(OpticalFlow, ZeroMotionStaysPut) {
  const ImageF32 tex = smooth_texture(64, 64, 5);
  const ImageU8 frame = to_u8(tex);
  const ImagePyramid pyr(frame, 3);
  const auto pts = grid_points(64, 64, 16, 12);
  std::vector<geometry::Point2f> out;
  std::vector<FlowStatus> status;
  calc_optical_flow_pyr_lk(pyr, pyr, pts, out, status);
  ASSERT_EQ(out.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(status[i].tracked);
    EXPECT_NEAR((out[i] - pts[i]).norm(), 0.0f, 0.05f);
  }
}

TEST(OpticalFlow, EmptyInputsHandled) {
  std::vector<geometry::Point2f> out;
  std::vector<FlowStatus> status;
  calc_optical_flow_pyr_lk(ImagePyramid{}, ImagePyramid{}, {{1.0f, 1.0f}}, out,
                           status);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(status[0].tracked);
}

TEST(OpticalFlow, TexturelessWindowRejected) {
  const ImageU8 flat(64, 64, 128);
  const ImagePyramid pyr(flat, 3);
  std::vector<geometry::Point2f> out;
  std::vector<FlowStatus> status;
  calc_optical_flow_pyr_lk(pyr, pyr, {{32.0f, 32.0f}}, out, status);
  EXPECT_FALSE(status[0].tracked);
}

TEST(OpticalFlow, LargeMotionNeedsPyramid) {
  const ImageF32 tex = smooth_texture(96, 96, 17);
  const ImageU8 a = to_u8(tex);
  const ImageU8 b = shift_image(tex, 11.0f, -7.0f);
  const auto pts = grid_points(96, 96, 24, 16);

  // Single-level LK fails for an 11-pixel shift (window radius 7) ...
  {
    const ImagePyramid pa(a, 1);
    const ImagePyramid pb(b, 1);
    std::vector<geometry::Point2f> out;
    std::vector<FlowStatus> status;
    calc_optical_flow_pyr_lk(pa, pb, pts, out, status);
    int recovered = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const geometry::Point2f d = out[i] - pts[i];
      if (status[i].tracked && std::abs(d.x - 11.0f) < 1.0f &&
          std::abs(d.y + 7.0f) < 1.0f) {
        ++recovered;
      }
    }
    EXPECT_LT(recovered, static_cast<int>(pts.size()) / 2);
  }
  // ... but the 4-level pyramid recovers it.
  {
    const ImagePyramid pa(a, 4);
    const ImagePyramid pb(b, 4);
    std::vector<geometry::Point2f> out;
    std::vector<FlowStatus> status;
    calc_optical_flow_pyr_lk(pa, pb, pts, out, status);
    int recovered = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      const geometry::Point2f d = out[i] - pts[i];
      if (status[i].tracked && std::abs(d.x - 11.0f) < 1.0f &&
          std::abs(d.y + 7.0f) < 1.0f) {
        ++recovered;
      }
    }
    EXPECT_GT(recovered, static_cast<int>(pts.size()) * 3 / 4);
  }
}

// Property sweep: pyramidal LK recovers translations over a grid of
// sub-pixel and multi-pixel shifts.
class FlowShiftTest
    : public ::testing::TestWithParam<std::tuple<float, float>> {};

TEST_P(FlowShiftTest, RecoversTranslation) {
  const auto [dx, dy] = GetParam();
  const ImageF32 tex = smooth_texture(80, 80, 23);
  const ImageU8 a = to_u8(tex);
  const ImageU8 b = shift_image(tex, dx, dy);
  const ImagePyramid pa(a, 3);
  const ImagePyramid pb(b, 3);
  const auto pts = grid_points(80, 80, 20, 13);

  std::vector<geometry::Point2f> out;
  std::vector<FlowStatus> status;
  calc_optical_flow_pyr_lk(pa, pb, pts, out, status);

  int tracked = 0;
  double err = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!status[i].tracked) continue;
    const geometry::Point2f d = out[i] - pts[i];
    err += std::hypot(d.x - dx, d.y - dy);
    ++tracked;
  }
  ASSERT_GT(tracked, static_cast<int>(pts.size()) * 2 / 3);
  // Accuracy degrades gracefully with shift magnitude (coarse pyramid
  // levels contribute quantization error on big displacements).
  const double tolerance = 0.25 + 0.04 * std::hypot(dx, dy);
  EXPECT_LT(err / tracked, tolerance) << "dx=" << dx << " dy=" << dy;
}

INSTANTIATE_TEST_SUITE_P(
    ShiftGrid, FlowShiftTest,
    ::testing::Values(std::make_tuple(0.5f, 0.0f), std::make_tuple(0.0f, 0.5f),
                      std::make_tuple(0.25f, -0.75f), std::make_tuple(1.5f, 1.0f),
                      std::make_tuple(-2.0f, 3.0f), std::make_tuple(4.0f, -4.0f),
                      std::make_tuple(6.5f, 2.5f), std::make_tuple(-8.0f, -5.0f)));

}  // namespace
}  // namespace adavp::vision
