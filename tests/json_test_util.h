#pragma once

// Minimal JSON parser shared by the observability tests: enough to validate
// exported documents (traces, metrics snapshots, time-series, SLO reports,
// flight-recorder dumps) by parsing them back. Not a general-purpose parser
// — no \uXXXX decoding, no duplicate-key detection — just what the golden
// checks need.

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace adavp::testjson {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    const bool ok = value(out);
    skip_ws();
    return ok && pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::kString; return string(out.str);
      case 't': out.kind = JsonValue::kBool; out.boolean = true; return literal("true");
      case 'f': out.kind = JsonValue::kBool; out.boolean = false; return literal("false");
      case 'n': out.kind = JsonValue::kNull; return literal("null");
      default: return number(out);
    }
  }

  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        switch (text_[pos_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': pos_ += 4; out += '?'; break;  // good enough for checks
          default: out += text_[pos_];
        }
      } else {
        out += text_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = JsonValue::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue element;
      if (!value(element)) return false;
      out.object.emplace(std::move(key), std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') { ++pos_; continue; }
      if (text_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace adavp::testjson
