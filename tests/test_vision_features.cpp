#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "vision/good_features.h"
#include "vision/image_ops.h"

namespace adavp::vision {
namespace {

/// A bright square on dark background: its 4 corners are ideal Shi-Tomasi
/// features.
ImageU8 square_image(int size, int left, int top, int side) {
  ImageU8 img(size, size, 20);
  for (int y = top; y < top + side; ++y) {
    for (int x = left; x < left + side; ++x) img.at(x, y) = 220;
  }
  return img;
}

bool near_any_corner(const geometry::Point2f& p, int left, int top, int side,
                     float tol) {
  const float xs[] = {static_cast<float>(left), static_cast<float>(left + side)};
  const float ys[] = {static_cast<float>(top), static_cast<float>(top + side)};
  for (float cx : xs) {
    for (float cy : ys) {
      if (std::abs(p.x - cx) <= tol && std::abs(p.y - cy) <= tol) return true;
    }
  }
  return false;
}

TEST(MinEigenvalue, FlatImageIsZero) {
  const ImageF32 img(16, 16, 50.0f);
  const ImageF32 scores = min_eigenvalue_map(img, 3);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) EXPECT_NEAR(scores.at(x, y), 0.0f, 1e-4f);
  }
}

TEST(MinEigenvalue, EdgeScoresLowCornerScoresHigh) {
  // A vertical step edge has strong Ix but no Iy: min eigenvalue ~ 0.
  ImageF32 edge(16, 16, 0.0f);
  for (int y = 0; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) edge.at(x, y) = 100.0f;
  }
  const ImageF32 edge_scores = min_eigenvalue_map(edge, 3);
  EXPECT_NEAR(edge_scores.at(8, 8), 0.0f, 1e-2f);

  // A corner (quarter-plane) has both gradients: min eigenvalue >> 0.
  ImageF32 corner(16, 16, 0.0f);
  for (int y = 8; y < 16; ++y) {
    for (int x = 8; x < 16; ++x) corner.at(x, y) = 100.0f;
  }
  const ImageF32 corner_scores = min_eigenvalue_map(corner, 3);
  EXPECT_GT(corner_scores.at(8, 8), 10.0f);
}

TEST(GoodFeatures, FindsSquareCorners) {
  const ImageU8 img = square_image(40, 10, 12, 16);
  GoodFeaturesParams params;
  params.max_corners = 8;
  params.quality_level = 0.2;
  params.min_distance = 4.0;
  const auto corners = good_features_to_track(img, params);
  ASSERT_GE(corners.size(), 4u);
  int near_corners = 0;
  for (const auto& c : corners) {
    if (near_any_corner(c, 10, 12, 16, 2.5f)) ++near_corners;
  }
  EXPECT_GE(near_corners, 4);
}

TEST(GoodFeatures, RespectsMaxCorners) {
  util::Rng rng(3);
  ImageU8 img(64, 64);
  for (auto& px : img.pixels()) {
    px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  GoodFeaturesParams params;
  params.max_corners = 10;
  params.quality_level = 0.01;
  const auto corners = good_features_to_track(img, params);
  EXPECT_LE(corners.size(), 10u);
  EXPECT_GT(corners.size(), 0u);
}

TEST(GoodFeatures, MinDistanceEnforced) {
  util::Rng rng(4);
  ImageU8 img(64, 64);
  for (auto& px : img.pixels()) {
    px = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  GoodFeaturesParams params;
  params.max_corners = 50;
  params.min_distance = 8.0;
  const auto corners = good_features_to_track(img, params);
  for (std::size_t i = 0; i < corners.size(); ++i) {
    for (std::size_t j = i + 1; j < corners.size(); ++j) {
      EXPECT_GE((corners[i] - corners[j]).norm(), 8.0f);
    }
  }
}

TEST(GoodFeatures, MaskRestrictsDetection) {
  // Two squares; mask covers only the left one.
  ImageU8 img = square_image(64, 8, 8, 12);
  for (int y = 40; y < 52; ++y) {
    for (int x = 40; x < 52; ++x) img.at(x, y) = 220;
  }
  const ImageU8 mask = boxes_mask({64, 64}, {{4, 4, 22, 22}});
  GoodFeaturesParams params;
  params.max_corners = 20;
  params.quality_level = 0.1;
  const auto corners = good_features_to_track(img, params, &mask);
  ASSERT_FALSE(corners.empty());
  for (const auto& c : corners) {
    EXPECT_LT(c.x, 30.0f);
    EXPECT_LT(c.y, 30.0f);
  }
}

TEST(GoodFeatures, EmptyImageOrZeroBudget) {
  EXPECT_TRUE(good_features_to_track(ImageU8{}, {}).empty());
  GoodFeaturesParams params;
  params.max_corners = 0;
  EXPECT_TRUE(good_features_to_track(square_image(32, 8, 8, 10), params).empty());
}

TEST(GoodFeatures, FlatImageHasNoFeatures) {
  const ImageU8 img(32, 32, 128);
  EXPECT_TRUE(good_features_to_track(img, {}).empty());
}

TEST(BoxesMask, MarksInteriorOnly) {
  const ImageU8 mask = boxes_mask({20, 20}, {{5, 5, 6, 6}});
  EXPECT_EQ(mask.at(7, 7), 255);
  EXPECT_EQ(mask.at(4, 4), 0);
  EXPECT_EQ(mask.at(12, 7), 0);
}

TEST(BoxesMask, ShrinkInsetsBox) {
  const ImageU8 mask = boxes_mask({20, 20}, {{5, 5, 8, 8}}, 2.0f);
  EXPECT_EQ(mask.at(9, 9), 255);   // deep interior
  EXPECT_EQ(mask.at(5, 5), 0);     // original border now outside
  EXPECT_EQ(mask.at(6, 6), 0);     // within shrink margin
}

TEST(BoxesMask, ClampsToImage) {
  const ImageU8 mask = boxes_mask({10, 10}, {{-5, -5, 10, 10}});
  EXPECT_EQ(mask.at(0, 0), 255);
  EXPECT_EQ(mask.at(6, 6), 0);
}

TEST(BoxesMask, MultipleBoxesUnion) {
  const ImageU8 mask = boxes_mask({30, 30}, {{2, 2, 5, 5}, {20, 20, 5, 5}});
  EXPECT_EQ(mask.at(4, 4), 255);
  EXPECT_EQ(mask.at(22, 22), 255);
  EXPECT_EQ(mask.at(12, 12), 0);
}

}  // namespace
}  // namespace adavp::vision
