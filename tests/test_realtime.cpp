#include <gtest/gtest.h>

#include "core/realtime_pipeline.h"
#include "core/scoring.h"
#include "core/training.h"
#include "metrics/accuracy.h"
#include "obs/telemetry.h"
#include "util/stats.h"

// Sanitizers inflate real compute (feature extraction, LK tracking) ~10x
// while scaled sleeps stay wall-clock accurate, so aggressive time
// compression starves the pipeline of schedule headroom. Timing-sensitive
// tests compress less when a sanitizer is active.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define ADAVP_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ADAVP_UNDER_SANITIZER 1
#endif
#endif

namespace adavp::core {
namespace {

double timing_sensitive_scale(double normal) {
#ifdef ADAVP_UNDER_SANITIZER
  return normal / 5.0;
#else
  return normal;
#endif
}

video::SceneConfig scene(std::uint64_t seed = 3, int frames = 90,
                         double speed = 1.0) {
  video::SceneConfig cfg;
  cfg.width = 192;
  cfg.height = 120;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 3;
  cfg.speed_mean = speed;
  return cfg;
}

TEST(RealtimePipeline, CompletesAndCoversAllFrames) {
  video::SyntheticVideo video(scene());
  video.precache();
  RealtimeOptions options;
  options.time_scale = 30.0;
  const RealtimeResult result = run_realtime(video, options);

  EXPECT_EQ(result.stats.frames_captured, video.frame_count());
  ASSERT_EQ(result.run.frames.size(),
            static_cast<std::size_t>(video.frame_count()));
  int with_result = 0;
  for (const auto& frame : result.run.frames) {
    if (frame.source != ResultSource::kNone) ++with_result;
  }
  // Everything after the first completed detection must carry a result.
  EXPECT_GT(with_result, video.frame_count() * 2 / 3);
}

TEST(RealtimePipeline, DetectorAndTrackerBothContribute) {
  video::SyntheticVideo video(scene(5, 120));
  video.precache();
  RealtimeOptions options;
  options.time_scale = 30.0;
  const RealtimeResult result = run_realtime(video, options);
  EXPECT_GT(result.stats.frames_detected, 1);
  EXPECT_GT(result.stats.frames_tracked, 0);
  // The detector can only process a small share of 30 FPS input.
  EXPECT_LT(result.stats.frames_detected, video.frame_count() / 3);
}

TEST(RealtimePipeline, DetectionsAdvanceMonotonically) {
  video::SyntheticVideo video(scene(7, 120));
  video.precache();
  RealtimeOptions options;
  options.time_scale = 30.0;
  const RealtimeResult result = run_realtime(video, options);
  int prev = -1;
  for (const auto& cycle : result.run.cycles) {
    EXPECT_GT(cycle.detected_frame, prev);
    prev = cycle.detected_frame;
  }
}

TEST(RealtimePipeline, ProducesReasonableAccuracy) {
  video::SyntheticVideo video(scene(9, 120, 0.8));
  video.precache();
  RealtimeOptions options;
  options.setting = detect::ModelSetting::kYolov3_512;
  options.time_scale = 20.0;
  const RealtimeResult result = run_realtime(video, options);
  const std::vector<double> f1 = score_run(result.run, video, 0.5);
  // Skip the start-up frames that precede the first detection.
  std::vector<double> steady(f1.begin() + 30, f1.end());
  EXPECT_GT(util::mean(steady), 0.3);
}

TEST(RealtimePipeline, AdapterSwitchesUnderRealThreads) {
  // Start at the smallest setting on calm content: the adapter must switch
  // up toward the large sizes as soon as it has a velocity measurement.
  video::SyntheticVideo video(scene(11, 150, 0.8));
  const adapt::ModelAdapter adapter = pretrained_adapter();
  video.precache();
  RealtimeOptions options;
  options.adapter = &adapter;
  options.setting = detect::ModelSetting::kYolov3_320;
  options.time_scale = timing_sensitive_scale(30.0);
  const RealtimeResult result = run_realtime(video, options);
  EXPECT_GE(result.stats.setting_switches, 1);
  // And the final cycles should sit at a larger size than the start.
  ASSERT_FALSE(result.run.cycles.empty());
  EXPECT_NE(result.run.cycles.back().setting, detect::ModelSetting::kYolov3_320);
}

TEST(RealtimePipeline, NoFrameRendersTwiceThroughTheStore) {
  // The pre-store pipeline rasterized every reference frame twice (once on
  // the camera thread, again in the tracker's set_reference). The store's
  // render-once latch plus the FrameRef carried in the detection event must
  // eliminate that: with eviction disabled, renders == frames captured and
  // nothing ever re-renders.
  video::SyntheticVideo video(scene(23, 60));  // deliberately NOT precached
  RealtimeOptions options;
  options.time_scale = timing_sensitive_scale(30.0);
  options.frame_store.window = video.frame_count();  // retain everything
  const RealtimeResult result = run_realtime(video, options);

  EXPECT_EQ(result.stats.frames_rendered, result.stats.frames_captured);
  EXPECT_EQ(result.run.frame_store.re_renders, 0u);
  // Every tracker access (reference re-arm + tracked frames) was a shared
  // hit on a frame the camera had already rendered.
  EXPECT_GE(result.run.frame_store.hits,
            static_cast<std::uint64_t>(result.stats.frames_tracked));
  EXPECT_GE(result.stats.frames_dropped, 0);
}

TEST(RealtimePipeline, LegacyStatsAgreeWithTelemetrySnapshot) {
  // The legacy RealtimeStats counters and the obs metrics layer observe the
  // same run; any disagreement means an instrumentation site drifted.
  video::SyntheticVideo video(scene(17, 120));
  const adapt::ModelAdapter adapter = pretrained_adapter();
  video.precache();
  obs::Telemetry::set_enabled(true);
  obs::Telemetry::instance().reset();
  RealtimeOptions options;
  options.adapter = &adapter;
  options.setting = detect::ModelSetting::kYolov3_320;
  options.time_scale = 30.0;
  const RealtimeResult result = run_realtime(video, options);
  obs::Telemetry::set_enabled(false);

  const obs::MetricsSnapshot& snap = result.metrics;
  EXPECT_EQ(snap.counter("detector.cycles"),
            static_cast<std::uint64_t>(result.stats.frames_detected));
  EXPECT_EQ(snap.counter("tracker.frames"),
            static_cast<std::uint64_t>(result.stats.frames_tracked));
  EXPECT_EQ(snap.counter("tracker.cancellations"),
            static_cast<std::uint64_t>(result.stats.tracking_tasks_cancelled));
  EXPECT_EQ(snap.counter("adapter.switches"),
            static_cast<std::uint64_t>(result.stats.setting_switches));
  EXPECT_EQ(snap.counter("camera.frames"),
            static_cast<std::uint64_t>(result.stats.frames_captured));
  EXPECT_EQ(snap.counter("buffer.dropped"),
            static_cast<std::uint64_t>(result.stats.frames_dropped));
  EXPECT_EQ(snap.counter("framestore.renders"),
            result.run.frame_store.renders);
  // The modeled-GPU-occupancy histogram saw exactly one sample per cycle.
  const obs::MetricsSnapshot::HistogramEntry* occupancy =
      snap.histogram("detector.occupancy_ms");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_EQ(occupancy->count,
            static_cast<std::uint64_t>(result.stats.frames_detected));
}

TEST(RealtimePipeline, TelemetryDisabledLeavesResultSnapshotEmpty) {
  video::SyntheticVideo video(scene(19, 45));
  video.precache();
  obs::Telemetry::set_enabled(false);
  RealtimeOptions options;
  options.time_scale = 45.0;
  const RealtimeResult result = run_realtime(video, options);
  EXPECT_TRUE(result.metrics.counters.empty());
  EXPECT_TRUE(result.metrics.histograms.empty());
}

TEST(RealtimePipeline, UnsupervisedRunReportsCleanStatus) {
  // The default pipeline (no supervisor, no fault plan) must behave exactly
  // as before the fault-tolerance work: ok status, zero supervisor counters.
  video::SyntheticVideo video(scene(21, 60));
  video.precache();
  RealtimeOptions options;
  options.time_scale = 30.0;
  const RealtimeResult result = run_realtime(video, options);
  EXPECT_TRUE(result.status.ok()) << result.status.to_string();
  EXPECT_FALSE(result.status.failed());
  EXPECT_EQ(result.status.code(), StatusCode::kOk);
  EXPECT_EQ(result.stats.watchdog_timeouts, 0);
  EXPECT_EQ(result.stats.coast_cycles, 0);
  EXPECT_EQ(result.stats.coast_frames, 0);
  EXPECT_EQ(result.stats.degrade_steps_down, 0);
  EXPECT_EQ(result.stats.degrade_steps_up, 0);
  EXPECT_EQ(result.stats.max_degrade_level, 0);
  EXPECT_EQ(result.stats.faults_injected, 0);
}

TEST(RealtimePipeline, RunsBackToBackWithoutLeakingThreads) {
  video::SyntheticVideo video(scene(13, 45));
  video.precache();
  RealtimeOptions options;
  options.time_scale = 45.0;
  for (int i = 0; i < 3; ++i) {
    const RealtimeResult result = run_realtime(video, options);
    EXPECT_EQ(result.stats.frames_captured, 45);
  }
}

TEST(RealtimePipeline, PopulatesEnergyRailsAndMirrorsStatusOntoTheRun) {
  video::SyntheticVideo video(scene(21, 60));
  video.precache();
  RealtimeOptions options;
  options.time_scale = 30.0;
  const RealtimeResult result = run_realtime(video, options);
  // The per-worker meters (GPU inference, CPU tracking) integrate over the
  // video timeline, exactly like the virtual engines' epilogue.
  EXPECT_GT(result.run.energy.gpu_wh, 0.0);
  EXPECT_GT(result.run.energy.cpu_wh, 0.0);
  EXPECT_GT(result.run.energy.total_wh(), 0.0);
  // The embedded RunResult carries the same verdict as the legacy fields.
  EXPECT_EQ(result.run.status.code(), result.status.code());
  EXPECT_EQ(result.run.faults_injected,
            static_cast<std::uint64_t>(result.stats.faults_injected));
}

TEST(RealtimePipeline, TrackerFaultChannelInjectsAndDegradesTheRun) {
  video::SyntheticVideo video(scene(21, 60));
  video.precache();
  const auto plan = util::FaultPlan::parse(
      "tracker: starve every=3 frac=0.5; diverge every=11 px=4", 31);
  ASSERT_TRUE(plan.has_value());
  RealtimeOptions options;
  options.time_scale = timing_sensitive_scale(30.0);
  options.fault_plan = &*plan;
  const RealtimeResult result = run_realtime(video, options);
  EXPECT_FALSE(result.status.failed()) << result.status.to_string();
  EXPECT_GT(result.stats.faults_injected, 0);
  EXPECT_EQ(result.status.code(), StatusCode::kDegraded)
      << result.status.to_string();
  EXPECT_EQ(result.run.faults_injected,
            static_cast<std::uint64_t>(result.stats.faults_injected));
}

TEST(RealtimePipeline, FailureStatusCarriesChannelAtFrameAnnotation) {
  // Every worker annotates its failure Status as `<channel>@frame <N>:
  // <what>` (core::annotate_failure) so a post-mortem can place the
  // failure without a flight-recorder dump. Pin the format here: an
  // unsupervised detector throw must surface as a kWorkerFailure whose
  // message leads with the channel and frame.
  video::SyntheticVideo video(scene(21, 60));
  video.precache();
  const auto plan = util::FaultPlan::parse("detector: throw every=1", 11);
  ASSERT_TRUE(plan.has_value());
  RealtimeOptions options;
  options.time_scale = timing_sensitive_scale(30.0);
  options.fault_plan = &*plan;
  const RealtimeResult result = run_realtime(video, options);
  EXPECT_EQ(result.status.code(), StatusCode::kWorkerFailure)
      << result.status.to_string();
  const std::string message(result.status.message());
  EXPECT_EQ(message.rfind("detector@frame ", 0), 0u) << message;
  EXPECT_NE(message.find(": detector thread: "), std::string::npos) << message;
  EXPECT_NE(message.find("injected detector fault"), std::string::npos)
      << message;
}

TEST(RealtimePipeline, CoastingBillsCoastPowerNotInferencePower) {
  // Long enough that the zero-GPU coasting tail dominates the fixed cost
  // of riding the ladder down: each of the four watchdog timeouts bills
  // deadline_factor (2x) times the mean inference latency on the GPU rail,
  // about 2.2 s of GPU time total, before the floor is reached.
  video::SyntheticVideo video(scene(21, 150));
  video.precache();
  RealtimeOptions clean;
  clean.time_scale = timing_sensitive_scale(30.0);
  const RealtimeResult baseline = run_realtime(video, clean);

  // Every inference overruns its watchdog deadline, so the ladder rides
  // down to tracker-only and the pipeline coasts. While coasting the GPU
  // is off and the CPU draws cpu_coast_w — so the degraded run must spend
  // strictly less GPU energy than the healthy one over the same timeline.
  const auto plan = util::FaultPlan::parse("detector: stall every=1 ms=5000", 7);
  ASSERT_TRUE(plan.has_value());
  RealtimeOptions degraded = clean;
  degraded.fault_plan = &*plan;
  degraded.supervisor.enabled = true;
  // Each recovery probe costs a full watchdog deadline of GPU time; push
  // them past the end of this video so the comparison below isolates the
  // coasting behavior.
  degraded.supervisor.ladder.probe_backoff_start = 1024;
  degraded.supervisor.ladder.probe_backoff_max = 1024;
  const RealtimeResult result = run_realtime(video, degraded);

  EXPECT_GT(result.stats.coast_cycles, 0);
  EXPECT_EQ(result.status.code(), StatusCode::kDegraded)
      << result.status.to_string();
  EXPECT_GT(result.run.energy.cpu_wh, 0.0);  // coast + tracking still billed
  EXPECT_LT(result.run.energy.gpu_wh, baseline.run.energy.gpu_wh);
}

}  // namespace
}  // namespace adavp::core
