#include <gtest/gtest.h>

#include "core/degradation.h"

namespace adavp {
namespace {

using core::DegradationLadder;
using core::LadderOptions;
using detect::ModelSetting;

TEST(DegradationLadder, StartsFullyHealthy) {
  DegradationLadder ladder;
  EXPECT_EQ(ladder.level(), 0);
  EXPECT_FALSE(ladder.tracker_only());
  ASSERT_TRUE(ladder.cap().has_value());
  EXPECT_EQ(*ladder.cap(), ModelSetting::kYolov3_608);
  EXPECT_FALSE(ladder.should_probe());  // probing is a floor-only behavior
}

TEST(DegradationLadder, OverrunsStepDownTheFullLadderToTrackerOnly) {
  DegradationLadder ladder;  // trip_threshold = 1
  const ModelSetting expected_caps[] = {
      ModelSetting::kYolov3_512, ModelSetting::kYolov3_416,
      ModelSetting::kYolov3_320};
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ladder.on_overrun());
    EXPECT_EQ(ladder.level(), i + 1);
    ASSERT_TRUE(ladder.cap().has_value());
    EXPECT_EQ(*ladder.cap(), expected_caps[i]);
  }
  EXPECT_TRUE(ladder.on_overrun());
  EXPECT_EQ(ladder.level(), DegradationLadder::kFloorLevel);
  EXPECT_TRUE(ladder.tracker_only());
  EXPECT_FALSE(ladder.cap().has_value());
  EXPECT_EQ(ladder.steps_down(), 4);
  EXPECT_EQ(ladder.max_level_seen(), 4);
}

TEST(DegradationLadder, TripThresholdRequiresConsecutiveOverruns) {
  LadderOptions options;
  options.trip_threshold = 3;
  DegradationLadder ladder(options);
  // Two overruns, then a success: the streak resets, no step.
  EXPECT_FALSE(ladder.on_overrun());
  EXPECT_FALSE(ladder.on_overrun());
  EXPECT_FALSE(ladder.on_success());
  EXPECT_EQ(ladder.level(), 0);
  // Three consecutive overruns trip the ladder.
  EXPECT_FALSE(ladder.on_overrun());
  EXPECT_FALSE(ladder.on_overrun());
  EXPECT_TRUE(ladder.on_overrun());
  EXPECT_EQ(ladder.level(), 1);
  EXPECT_EQ(ladder.overruns(), 5);
}

TEST(DegradationLadder, HysteresisWindowGatesRecovery) {
  LadderOptions options;
  options.recover_after = 3;
  DegradationLadder ladder(options);
  ladder.on_overrun();
  ladder.on_overrun();
  ASSERT_EQ(ladder.level(), 2);
  // One lucky success must not bounce the level back up.
  EXPECT_FALSE(ladder.on_success());
  EXPECT_FALSE(ladder.on_success());
  EXPECT_EQ(ladder.level(), 2);
  // An overrun inside the window restarts it (and, with trip_threshold=1,
  // steps further down).
  EXPECT_TRUE(ladder.on_overrun());
  ASSERT_EQ(ladder.level(), 3);
  EXPECT_FALSE(ladder.on_success());
  EXPECT_FALSE(ladder.on_success());
  EXPECT_TRUE(ladder.on_success());
  EXPECT_EQ(ladder.level(), 2);
  EXPECT_EQ(ladder.steps_up(), 1);
  // Recovery continues one level per window, never past level 0.
  for (int i = 0; i < 2 * 3; ++i) ladder.on_success();
  EXPECT_EQ(ladder.level(), 0);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(ladder.on_success());
  EXPECT_EQ(ladder.level(), 0);
}

TEST(DegradationLadder, FloorProbesOnExponentialBackoff) {
  LadderOptions options;
  options.recover_after = 1;
  options.probe_backoff_start = 2;
  options.probe_backoff_max = 8;
  DegradationLadder ladder(options);
  for (int i = 0; i < 4; ++i) ladder.on_overrun();
  ASSERT_TRUE(ladder.tracker_only());

  // First probe after probe_backoff_start coast cycles.
  EXPECT_FALSE(ladder.should_probe());
  EXPECT_TRUE(ladder.should_probe());

  // A failed probe doubles the backoff (2 -> 4): next probe 4 cycles out,
  // and the level stays at the floor.
  EXPECT_FALSE(ladder.on_overrun());
  EXPECT_EQ(ladder.level(), DegradationLadder::kFloorLevel);
  EXPECT_EQ(ladder.probe_backoff(), 4);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(ladder.should_probe());
  EXPECT_TRUE(ladder.should_probe());

  // Two more failures: 8, then capped at probe_backoff_max.
  ladder.on_overrun();
  EXPECT_EQ(ladder.probe_backoff(), 8);
  ladder.on_overrun();
  EXPECT_EQ(ladder.probe_backoff(), 8);

  // A successful probe resets the backoff and climbs off the floor.
  EXPECT_TRUE(ladder.on_success());
  EXPECT_EQ(ladder.level(), 3);
  EXPECT_FALSE(ladder.tracker_only());
  EXPECT_FALSE(ladder.should_probe());
}

TEST(DegradationLadder, ApplyCapsAdaptiveSettingsOnly) {
  DegradationLadder ladder;
  // Level 0: everything passes through.
  EXPECT_EQ(ladder.apply(ModelSetting::kYolov3_608), ModelSetting::kYolov3_608);
  EXPECT_EQ(ladder.apply(ModelSetting::kYolov3_320), ModelSetting::kYolov3_320);

  ladder.on_overrun();
  ladder.on_overrun();  // level 2 -> cap 416
  EXPECT_EQ(ladder.apply(ModelSetting::kYolov3_608), ModelSetting::kYolov3_416);
  EXPECT_EQ(ladder.apply(ModelSetting::kYolov3_416), ModelSetting::kYolov3_416);
  // The adapter may still choose *below* the cap (composition, not override).
  EXPECT_EQ(ladder.apply(ModelSetting::kYolov3_320), ModelSetting::kYolov3_320);
  // Non-adaptive settings are not the ladder's to manage.
  EXPECT_EQ(ladder.apply(ModelSetting::kYolov3Tiny_320),
            ModelSetting::kYolov3Tiny_320);
  EXPECT_EQ(ladder.apply(ModelSetting::kYolov3_704_Oracle),
            ModelSetting::kYolov3_704_Oracle);
}

TEST(DegradationLadder, ClampsDegenerateOptions) {
  LadderOptions options;
  options.trip_threshold = 0;
  options.recover_after = -2;
  options.probe_backoff_start = 0;
  options.probe_backoff_max = -1;
  DegradationLadder ladder(options);
  EXPECT_TRUE(ladder.on_overrun());  // trip_threshold clamped to 1
  ladder.on_overrun();
  ladder.on_overrun();
  ladder.on_overrun();
  ASSERT_TRUE(ladder.tracker_only());
  EXPECT_EQ(ladder.probe_backoff(), 1);  // start clamped to 1
  EXPECT_TRUE(ladder.should_probe());
  ladder.on_overrun();
  EXPECT_EQ(ladder.probe_backoff(), 1);  // max clamped to start
  EXPECT_TRUE(ladder.on_success());      // recover_after clamped to 1
  EXPECT_EQ(ladder.level(), 3);
}

}  // namespace
}  // namespace adavp
