#include <gtest/gtest.h>

#include "core/mpdt_pipeline.h"
#include "core/offload.h"
#include "core/scoring.h"
#include "metrics/accuracy.h"

namespace adavp::core {
namespace {

video::SceneConfig scene(std::uint64_t seed = 3, int frames = 200,
                         double speed = 1.5, double pan = 0.8) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 4;
  cfg.speed_mean = speed;
  cfg.camera_pan = pan;
  return cfg;
}

TEST(Offload, RoundTripLatencyComposition) {
  OffloadOptions options;
  options.rtt_ms = 100.0;
  options.bandwidth_mbps = 8.0;   // 40 kB * 8 / 8000 = 40 ms transmit
  options.server_latency_ms = 35.0;
  options.frame_bytes = 40000.0;
  EXPECT_NEAR(offload_round_trip_ms(options), 175.0, 1e-9);
}

TEST(Offload, CoversAllFrames) {
  const video::SyntheticVideo video(scene());
  OffloadOptions options;
  const RunResult run = run_offload(video, options);
  ASSERT_EQ(run.frames.size(), static_cast<std::size_t>(video.frame_count()));
  for (const auto& frame : run.frames) {
    EXPECT_NE(frame.source, ResultSource::kNone);
  }
}

TEST(Offload, FastNetworkDetectsMoreOften) {
  const video::SyntheticVideo video(scene(5, 240));
  OffloadOptions fast;
  fast.rtt_ms = 20.0;
  OffloadOptions slow;
  slow.rtt_ms = 400.0;
  EXPECT_GT(run_offload(video, fast).cycles.size(),
            run_offload(video, slow).cycles.size() * 2);
}

TEST(Offload, AccuracyDegradesWithNetworkLatency) {
  // The paper's §I argument: offloading is hostage to the network.
  const video::SyntheticVideo video(scene(7, 240, 2.0, 1.2));
  auto accuracy_at = [&](double rtt) {
    OffloadOptions options;
    options.rtt_ms = rtt;
    const RunResult run = run_offload(video, options);
    return metrics::video_accuracy(score_run(run, video, 0.5), 0.7);
  };
  EXPECT_GT(accuracy_at(20.0), accuracy_at(500.0));
}

TEST(Offload, GoodNetworkCanBeatOnDevicePipeline) {
  // With a fast edge server nearby, offloaded YOLOv3-608 cycles are
  // shorter than on-device ones (90 ms vs 500 ms), so accuracy should be
  // at least competitive — the paper's complaint is about *unpredictable*
  // networks, not ideal ones.
  const video::SyntheticVideo video(scene(9, 240));
  OffloadOptions offload;
  offload.rtt_ms = 25.0;
  MpdtOptions on_device;
  on_device.setting = detect::ModelSetting::kYolov3_608;
  const double offload_acc = metrics::video_accuracy(
      score_run(run_offload(video, offload), video, 0.5), 0.7);
  const double device_acc = metrics::video_accuracy(
      score_run(run_mpdt(video, on_device), video, 0.5), 0.7);
  EXPECT_GE(offload_acc, device_acc - 0.05);
}

TEST(Offload, NoGpuEnergyCharged) {
  const video::SyntheticVideo video(scene(11, 150));
  const RunResult run = run_offload(video, {});
  // The detector runs remotely: the GPU rail only carries idle draw.
  const double hours = run.timeline_ms / 3'600'000.0;
  EXPECT_NEAR(run.energy.gpu_wh, 0.15 * hours, 0.02 * hours + 1e-6);
}

TEST(Offload, DeterministicGivenSeed) {
  const video::SyntheticVideo video(scene(13, 120));
  OffloadOptions options;
  options.seed = 99;
  const RunResult a = run_offload(video, options);
  const RunResult b = run_offload(video, options);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].boxes.size(), b.frames[i].boxes.size());
  }
}

}  // namespace
}  // namespace adavp::core
