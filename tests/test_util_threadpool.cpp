#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/scratch_arena.h"
#include "util/thread_pool.h"

namespace adavp::util {
namespace {

// -------------------------------------------------------- thread pool ----

TEST(ThreadPool, StartupAndShutdown) {
  for (int workers : {0, 1, 3}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.worker_count(), workers);
    // Destructor joins cleanly with an idle queue.
  }
}

TEST(ThreadPool, SubmitRunsTaskAndReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitWithZeroWorkersRunsInline) {
  ThreadPool pool(0);
  std::atomic<int> ran{0};
  pool.submit([&] { ran = 1; }).get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, /*grain=*/64, /*max_parallelism=*/0,
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        hits[static_cast<std::size_t>(i)].fetch_add(1);
                      }
                    });
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSerialRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, 1, 0, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // max_parallelism = 1 => single inline call covering the whole range.
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  pool.parallel_for(0, 100, 1, 1, [&](std::int64_t lo, std::int64_t hi) {
    chunks.push_back({lo, hi});
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 0);
  EXPECT_EQ(chunks[0].second, 100);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 1000, 1, 0,
                        [](std::int64_t lo, std::int64_t) {
                          if (lo >= 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives and stays usable after a failed region.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 1, 0, [&](std::int64_t lo, std::int64_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitExceptionArrivesViaFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::logic_error("bad"); });
  EXPECT_THROW(fut.get(), std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 8, 1, 0, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // A nested call from a worker (or the caller) must not re-enter the
      // queue and deadlock; it degrades to a serial inline run.
      pool.parallel_for(0, 10, 1, 0, [&](std::int64_t l2, std::int64_t h2) {
        inner_total += static_cast<int>(h2 - l2);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(1);  // single worker: a queued nested task would deadlock
  auto fut = pool.submit([&] {
    auto inner = pool.submit([] { return 7; });
    return inner.get() + 1;
  });
  EXPECT_EQ(fut.get(), 8);
}

TEST(ThreadPool, StatsCountRegionsAndChunks) {
  ThreadPool pool(2);
  pool.parallel_for(0, 1024, 8, 0, [](std::int64_t, std::int64_t) {});
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.workers, 2);
  EXPECT_GE(s.parallel_regions, 1u);
  EXPECT_GE(s.chunks_executed, 2u);
  EXPECT_EQ(s.queue_depth, 0u);  // drained
}

TEST(ThreadPool, SharedPoolIsLazyThenSticky) {
  // shared_if_started() may or may not be null depending on test order,
  // but after shared() it must return the same object.
  ThreadPool& pool = ThreadPool::shared();
  EXPECT_EQ(ThreadPool::shared_if_started(), &pool);
  EXPECT_EQ(&ThreadPool::shared(), &pool);
  EXPECT_EQ(pool.worker_count(), ThreadPool::default_concurrency() - 1);
}

// ------------------------------------------------------ scratch arena ----

TEST(ScratchArena, BumpAllocationsAreDisjointAndAligned) {
  ScratchArena arena(128);
  float* a = arena.alloc<float>(10);
  double* b = arena.alloc<double>(5);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(float), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
  std::memset(a, 0xAB, 10 * sizeof(float));
  std::memset(b, 0xCD, 5 * sizeof(double));
  EXPECT_EQ(reinterpret_cast<unsigned char*>(a)[0], 0xAB);  // no overlap
}

TEST(ScratchArena, GrowthKeepsExistingPointersValid) {
  ScratchArena arena(64);
  int* small = arena.alloc<int>(4);
  small[0] = 1234;
  // Force growth past the first block several times over.
  for (int i = 0; i < 10; ++i) arena.alloc<char>(256);
  EXPECT_EQ(small[0], 1234);  // block chaining, not reallocation
}

TEST(ScratchArena, ScopeRewindReusesMemory) {
  ScratchArena arena(1024);
  void* first = nullptr;
  {
    ScratchArena::Scope scope(arena);
    first = arena.alloc_bytes(100, 8);
  }
  {
    ScratchArena::Scope scope(arena);
    void* second = arena.alloc_bytes(100, 8);
    EXPECT_EQ(first, second);  // same bytes handed out again
  }
  const std::size_t cap = arena.capacity();
  {
    ScratchArena::Scope scope(arena);
    arena.alloc_bytes(100, 8);
  }
  EXPECT_EQ(arena.capacity(), cap);  // steady state: no further growth
}

TEST(ScratchArena, AllocAlignedHonorsOveralignment) {
  ScratchArena arena(256);
  // Perturb the cursor so a naive bump would land misaligned.
  arena.alloc<char>(3);
  for (const std::size_t align : {16u, 32u, 64u}) {
    float* p = arena.alloc_aligned<float>(9, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "alignment " << align;
    arena.alloc<char>(1);  // re-perturb before the next request
  }
  // Alignment below alignof(T) is promoted, never demoted.
  double* d = arena.alloc_aligned<double>(2, 1);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

TEST(ScratchArena, AllocAlignedPointersSurviveGrowth) {
  // The stable-pointer guarantee must hold for over-aligned allocations
  // too: growing chains a new block, it never moves old ones.
  ScratchArena arena(64);
  float* v = arena.alloc_aligned<float>(8, 32);
  for (int i = 0; i < 8; ++i) v[i] = static_cast<float>(i);
  for (int i = 0; i < 16; ++i) arena.alloc_aligned<float>(64, 32);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(v[i], static_cast<float>(i));
  }
}

TEST(ScratchArena, ThreadLocalArenasAreIndependent) {
  ScratchArena& mine = ScratchArena::thread_local_arena();
  ScratchArena* theirs = nullptr;
  std::thread t([&] { theirs = &ScratchArena::thread_local_arena(); });
  t.join();
  EXPECT_NE(&mine, theirs);
}

}  // namespace
}  // namespace adavp::util
