#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/mpdt_pipeline.h"
#include "core/scoring.h"
#include "core/trace.h"

namespace adavp::core {
namespace {

video::SceneConfig scene(std::uint64_t seed = 3, int frames = 90) {
  video::SceneConfig cfg;
  cfg.width = 192;
  cfg.height = 120;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 3;
  return cfg;
}

RunResult sample_run(const video::SyntheticVideo& video) {
  MpdtOptions options;
  options.seed = 11;
  return run_mpdt(video, options);
}

TEST(Trace, RoundTripPreservesEverything) {
  const video::SyntheticVideo video(scene());
  const RunResult original = sample_run(video);

  std::stringstream buffer;
  ASSERT_TRUE(write_trace(original, buffer));
  const auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.has_value());

  ASSERT_EQ(loaded->frames.size(), original.frames.size());
  ASSERT_EQ(loaded->cycles.size(), original.cycles.size());
  EXPECT_EQ(loaded->setting_switches, original.setting_switches);
  EXPECT_NEAR(loaded->timeline_ms, original.timeline_ms, 1e-3);
  for (std::size_t i = 0; i < original.frames.size(); ++i) {
    const FrameResult& a = original.frames[i];
    const FrameResult& b = loaded->frames[i];
    EXPECT_EQ(a.frame_index, b.frame_index);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.setting, b.setting);
    ASSERT_EQ(a.boxes.size(), b.boxes.size());
    for (std::size_t k = 0; k < a.boxes.size(); ++k) {
      EXPECT_EQ(a.boxes[k].cls, b.boxes[k].cls);
      EXPECT_NEAR(a.boxes[k].box.left, b.boxes[k].box.left, 1e-3f);
      EXPECT_NEAR(a.boxes[k].box.width, b.boxes[k].box.width, 1e-3f);
    }
  }
  for (std::size_t i = 0; i < original.cycles.size(); ++i) {
    EXPECT_EQ(loaded->cycles[i].detected_frame, original.cycles[i].detected_frame);
    EXPECT_EQ(loaded->cycles[i].setting, original.cycles[i].setting);
    EXPECT_NEAR(loaded->cycles[i].mean_velocity, original.cycles[i].mean_velocity,
                1e-4);
  }
}

TEST(Trace, OfflineScoringMatchesLiveScoring) {
  // The paper's workflow: save at runtime, compute accuracy offline.
  const video::SyntheticVideo video(scene(7));
  const RunResult original = sample_run(video);

  std::stringstream buffer;
  ASSERT_TRUE(write_trace(original, buffer));
  const auto loaded = read_trace(buffer);
  ASSERT_TRUE(loaded.has_value());

  const auto live = score_run(original, video, 0.5);
  const auto offline = score_run(*loaded, video, 0.5);
  ASSERT_EQ(live.size(), offline.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_NEAR(live[i], offline[i], 1e-6) << "frame " << i;
  }
}

TEST(Trace, FileRoundTrip) {
  const video::SyntheticVideo video(scene(9, 45));
  const RunResult original = sample_run(video);
  const std::string path = ::testing::TempDir() + "/adavp_trace_test.txt";
  ASSERT_TRUE(write_trace_file(original, path));
  const auto loaded = read_trace_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->frames.size(), original.frames.size());
  std::remove(path.c_str());
}

TEST(Trace, RejectsMissingHeader) {
  std::stringstream buffer("video 10 0 1 0\n");
  EXPECT_FALSE(read_trace(buffer).has_value());
}

TEST(Trace, RejectsUnknownRecord) {
  std::stringstream buffer;
  buffer << "# adavp-trace v1\nvideo 1 0 1 0\nbogus 1 2 3\n";
  EXPECT_FALSE(read_trace(buffer).has_value());
}

TEST(Trace, RejectsOutOfRangeFrameIndex) {
  std::stringstream buffer;
  buffer << "# adavp-trace v1\nvideo 2 0 1 0\nframe 5 detector 512 0 0\n";
  EXPECT_FALSE(read_trace(buffer).has_value());
}

TEST(Trace, RejectsBadClassId) {
  std::stringstream buffer;
  buffer << "# adavp-trace v1\nvideo 1 0 1 0\n"
         << "frame 0 detector 512 0 1 99 0 0 10 10\n";
  EXPECT_FALSE(read_trace(buffer).has_value());
}

TEST(Trace, MissingFileReturnsNullopt) {
  EXPECT_FALSE(read_trace_file("/nonexistent/path/trace.txt").has_value());
}

}  // namespace
}  // namespace adavp::core
