#include <gtest/gtest.h>

#include "core/mpdt_pipeline.h"
#include "core/scoring.h"
#include "core/training.h"
#include "metrics/accuracy.h"
#include "util/stats.h"

namespace adavp::core {
namespace {

video::SceneConfig pipeline_scene(std::uint64_t seed = 3, int frames = 150,
                                  double speed = 1.0, double pan = 0.0) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 4;
  cfg.max_objects = 5;
  cfg.speed_mean = speed;
  cfg.camera_pan = pan;
  return cfg;
}

TEST(MpdtPipeline, EveryFrameGetsExactlyOneResult) {
  const video::SyntheticVideo video(pipeline_scene());
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_512;
  const RunResult run = run_mpdt(video, options);

  ASSERT_EQ(run.frames.size(), static_cast<std::size_t>(video.frame_count()));
  for (int i = 0; i < video.frame_count(); ++i) {
    const FrameResult& frame = run.frames[static_cast<std::size_t>(i)];
    EXPECT_EQ(frame.frame_index, i);
    EXPECT_NE(frame.source, ResultSource::kNone) << "frame " << i;
  }
}

TEST(MpdtPipeline, CyclesAreTimeOrderedAndDetectForward) {
  const video::SyntheticVideo video(pipeline_scene(5));
  MpdtOptions options;
  const RunResult run = run_mpdt(video, options);
  ASSERT_GT(run.cycles.size(), 2u);
  for (std::size_t i = 1; i < run.cycles.size(); ++i) {
    EXPECT_GT(run.cycles[i].detected_frame, run.cycles[i - 1].detected_frame);
    EXPECT_GE(run.cycles[i].start_ms, run.cycles[i - 1].end_ms - 1e-6);
    EXPECT_GT(run.cycles[i].end_ms, run.cycles[i].start_ms);
  }
}

TEST(MpdtPipeline, DetectionCadenceMatchesLatency) {
  // With ~412 ms detection at 30 FPS a cycle spans ~12-13 frames, so the
  // number of cycles is about frame_count / 12.
  const video::SyntheticVideo video(pipeline_scene(7, 300));
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_512;
  const RunResult run = run_mpdt(video, options);
  const double expected = 300.0 / (412.0 / 33.3);
  EXPECT_NEAR(static_cast<double>(run.cycles.size()), expected, expected * 0.35);
}

TEST(MpdtPipeline, SmallerSettingDetectsMoreOften) {
  const video::SyntheticVideo video(pipeline_scene(9, 240));
  MpdtOptions small;
  small.setting = detect::ModelSetting::kYolov3_320;
  MpdtOptions large;
  large.setting = detect::ModelSetting::kYolov3_608;
  EXPECT_GT(run_mpdt(video, small).cycles.size(),
            run_mpdt(video, large).cycles.size());
}

TEST(MpdtPipeline, TrackedFramesComeFromTracker) {
  const video::SyntheticVideo video(pipeline_scene(11, 200));
  MpdtOptions options;
  const RunResult run = run_mpdt(video, options);
  int detected = 0;
  int tracked = 0;
  int reused = 0;
  for (const auto& frame : run.frames) {
    switch (frame.source) {
      case ResultSource::kDetector: ++detected; break;
      case ResultSource::kTracker: ++tracked; break;
      case ResultSource::kReused: ++reused; break;
      case ResultSource::kNone: break;
    }
  }
  EXPECT_EQ(detected, static_cast<int>(run.cycles.size()));
  EXPECT_GT(tracked, 0);
  // Observation 4: tracking+overlay > frame interval, so some frames are
  // necessarily reused.
  EXPECT_GT(reused, 0);
}

TEST(MpdtPipeline, RealTimeByConstruction) {
  const video::SyntheticVideo video(pipeline_scene(13, 150));
  MpdtOptions options;
  const RunResult run = run_mpdt(video, options);
  // The pipeline may finish the last detection slightly after the video
  // ends, but must not accumulate latency beyond one cycle.
  EXPECT_LT(run.latency_multiplier, 1.2);
}

TEST(MpdtPipeline, StalenessWithinPaperBounds) {
  const video::SyntheticVideo video(pipeline_scene(15, 200));
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_512;
  const RunResult run = run_mpdt(video, options);
  // §IV-D3: AdaVP's result latency is one DNN detection time minus one
  // frame time (200-470 ms); allow tracker catch-up slack. The very last
  // detection may land after the video ends (its target frame is clamped
  // to the final frame), so exclude the tail.
  for (const auto& frame : run.frames) {
    if (frame.source == ResultSource::kDetector &&
        frame.frame_index < video.frame_count() - 20) {
      EXPECT_LT(frame.staleness_ms, 600.0);
      EXPECT_GT(frame.staleness_ms, 100.0);
    }
  }
}

TEST(MpdtPipeline, AccuracyBeatsDetectorFloor) {
  // With tracking calibrated by detections, MPDT should clearly beat an
  // "empty result" strawman and land in a plausible F1 band.
  const video::SyntheticVideo video(pipeline_scene(17, 200, 0.8));
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_512;
  const RunResult run = run_mpdt(video, options);
  const std::vector<double> f1 = score_run(run, video, 0.5);
  EXPECT_GT(util::mean(f1), 0.4);
}

TEST(MpdtPipeline, DeterministicGivenSeed) {
  const video::SyntheticVideo video(pipeline_scene(19, 120));
  MpdtOptions options;
  options.seed = 77;
  const RunResult a = run_mpdt(video, options);
  const RunResult b = run_mpdt(video, options);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].boxes.size(), b.frames[i].boxes.size());
    EXPECT_EQ(a.frames[i].source, b.frames[i].source);
  }
}

TEST(MpdtPipeline, CycleVelocityTracksContentSpeed) {
  const video::SyntheticVideo slow(pipeline_scene(21, 200, 0.3));
  const video::SyntheticVideo fast(pipeline_scene(21, 200, 2.2, 1.5));
  MpdtOptions options;
  auto mean_cycle_velocity = [](const RunResult& run) {
    util::RunningStats stats;
    for (const auto& c : run.cycles) {
      if (c.mean_velocity > 0.0) stats.add(c.mean_velocity);
    }
    return stats.mean();
  };
  EXPECT_GT(mean_cycle_velocity(run_mpdt(fast, options)),
            mean_cycle_velocity(run_mpdt(slow, options)) * 1.5);
}

TEST(MpdtPipeline, FixedSettingNeverSwitches) {
  const video::SyntheticVideo video(pipeline_scene(23, 150));
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_416;
  const RunResult run = run_mpdt(video, options);
  EXPECT_EQ(run.setting_switches, 0);
  for (const auto& cycle : run.cycles) {
    EXPECT_EQ(cycle.setting, detect::ModelSetting::kYolov3_416);
  }
}

TEST(AdaVpPipeline, AdapterDrivesSettingSwitches) {
  // Content whose velocity hovers around the trained 608|512 boundary
  // (~4.5 px/frame) forces runtime switching.
  video::SceneConfig cfg = pipeline_scene(25, 400, 3.5, 2.0);
  const video::SyntheticVideo video(cfg);
  const adapt::ModelAdapter adapter = pretrained_adapter();
  MpdtOptions options;
  options.adapter = &adapter;
  options.setting = detect::ModelSetting::kYolov3_512;
  const RunResult run = run_mpdt(video, options);
  // The fast video should pull AdaVP away from 608 at least sometimes.
  const auto usage = setting_usage(run);
  EXPECT_LT(usage[3], 1.0);  // not pinned to 608
  EXPECT_GT(run.cycles.size(), 4u);
}

TEST(AdaVpPipeline, SlowVideoPrefersLargeSizes) {
  const video::SyntheticVideo video(pipeline_scene(27, 300, 0.25));
  const adapt::ModelAdapter adapter = pretrained_adapter();
  MpdtOptions options;
  options.adapter = &adapter;
  const RunResult run = run_mpdt(video, options);
  const auto usage = setting_usage(run);
  // 512 + 608 dominate on slow content (Fig. 8's shape).
  EXPECT_GT(usage[2] + usage[3], 0.6);
}

TEST(AdaVpPipeline, FastVideoPrefersSmallSizes) {
  // Very fast content (apparent motion ~8 px/frame) must pull AdaVP below
  // the 608 setting most of the time (the trained thresholds put the
  // 608|512 boundary near 4.5 px/frame).
  const video::SyntheticVideo fast(pipeline_scene(29, 300, 4.5, 3.5));
  const video::SyntheticVideo slow(pipeline_scene(29, 300, 0.3, 0.0));
  const adapt::ModelAdapter adapter = pretrained_adapter();
  MpdtOptions options;
  options.adapter = &adapter;
  const auto fast_usage = setting_usage(run_mpdt(fast, options));
  const auto slow_usage = setting_usage(run_mpdt(slow, options));
  // The fast video must spend strictly less time at 608 and strictly more
  // at the smaller settings than the slow one.
  EXPECT_LT(fast_usage[3], slow_usage[3]);
  EXPECT_GT(fast_usage[0] + fast_usage[1] + fast_usage[2],
            slow_usage[0] + slow_usage[1] + slow_usage[2]);
  EXPECT_GT(fast_usage[0] + fast_usage[1] + fast_usage[2], 0.1);
}

TEST(Scoring, CyclesPerSwitchAndUsageInvariants) {
  const video::SyntheticVideo video(pipeline_scene(31, 300, 1.8, 1.0));
  const adapt::ModelAdapter adapter = pretrained_adapter();
  MpdtOptions options;
  options.adapter = &adapter;
  const RunResult run = run_mpdt(video, options);

  const auto gaps = cycles_per_switch(run);
  ASSERT_FALSE(gaps.empty());
  double total_gap = 0.0;
  for (double g : gaps) {
    EXPECT_GE(g, 1.0);
    total_gap += g;
  }
  EXPECT_LE(total_gap, static_cast<double>(run.cycles.size()));

  const auto usage = setting_usage(run);
  double total_usage = 0.0;
  for (double u : usage) total_usage += u;
  EXPECT_NEAR(total_usage, 1.0, 1e-9);
}

TEST(Scoring, RescoringAtStricterIouIsLower) {
  const video::SyntheticVideo video(pipeline_scene(33, 150));
  MpdtOptions options;
  const RunResult run = run_mpdt(video, options);
  const double acc05 = metrics::video_accuracy(score_run(run, video, 0.5), 0.7);
  const double acc06 = metrics::video_accuracy(score_run(run, video, 0.6), 0.7);
  EXPECT_LE(acc06, acc05 + 1e-9);
}

TEST(MpdtPipeline, SelectionPolicyKnob) {
  const video::SyntheticVideo video(pipeline_scene(41, 200, 1.2));
  auto accuracy_for = [&](SelectionPolicy policy) {
    MpdtOptions options;
    options.setting = detect::ModelSetting::kYolov3_512;
    options.selection = policy;
    const RunResult run = run_mpdt(video, options);
    for (const auto& frame : run.frames) {
      EXPECT_NE(frame.source, ResultSource::kNone);
    }
    return metrics::video_accuracy(score_run(run, video, 0.5), 0.7);
  };
  const double adaptive = accuracy_for(SelectionPolicy::kAdaptiveFraction);
  const double newest_only = accuracy_for(SelectionPolicy::kNewestOnly);
  // The paper's scheme tracks several frames per cycle; newest-only leaves
  // most frames on stale reuse and cannot do better.
  EXPECT_GE(adaptive, newest_only - 0.02);
}

TEST(MpdtPipeline, DescriptorBackendRunsEndToEnd) {
  const video::SyntheticVideo video(pipeline_scene(43, 150, 1.0));
  MpdtOptions options;
  options.setting = detect::ModelSetting::kYolov3_512;
  options.backend = TrackerBackend::kDescriptor;
  const RunResult run = run_mpdt(video, options);
  int tracked = 0;
  for (const auto& frame : run.frames) {
    EXPECT_NE(frame.source, ResultSource::kNone);
    if (frame.source == ResultSource::kTracker) ++tracked;
  }
  EXPECT_GT(tracked, 0);
  const std::vector<double> f1 = score_run(run, video, 0.5);
  EXPECT_GT(util::mean(f1), 0.3);
}

TEST(MpdtPipeline, EmptyVideoHandled) {
  video::SceneConfig cfg = pipeline_scene(35, 1);
  const video::SyntheticVideo video(cfg);
  MpdtOptions options;
  const RunResult run = run_mpdt(video, options);
  EXPECT_EQ(run.frames.size(), 1u);
  EXPECT_EQ(run.frames[0].source, ResultSource::kDetector);
}

}  // namespace
}  // namespace adavp::core
