// Canonical RunResult digest shared by the equivalence suites
// (test_engine_equivalence.cpp pins the golden constants;
// test_graph.cpp compares graph-backed vs legacy-loop backends with it).
//
// FNV-1a 64 over a fixed serialization of every observable RunResult field:
// frames (source/setting/staleness/boxes), cycles, energy rails, timeline,
// setting switches, latency multiplier, frame-store counters. Status, SLO
// report, and faults_injected are deliberately excluded — they are asserted
// directly where they matter.

#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "core/run_result.h"

namespace adavp::core {

class Digest {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  template <typename T>
  void pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&value, sizeof(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

inline std::uint64_t digest_run(const RunResult& run) {
  Digest d;
  d.pod<std::uint64_t>(run.frames.size());
  for (const FrameResult& f : run.frames) {
    d.pod<std::int32_t>(f.frame_index);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.source));
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.setting));
    d.pod<double>(f.staleness_ms);
    d.pod<std::uint64_t>(f.boxes.size());
    for (const metrics::LabeledBox& b : f.boxes) {
      d.pod<float>(b.box.left);
      d.pod<float>(b.box.top);
      d.pod<float>(b.box.width);
      d.pod<float>(b.box.height);
      d.pod<std::uint8_t>(static_cast<std::uint8_t>(b.cls));
    }
  }
  d.pod<std::uint64_t>(run.cycles.size());
  for (const CycleRecord& c : run.cycles) {
    d.pod<std::int32_t>(c.detected_frame);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(c.setting));
    d.pod<double>(c.start_ms);
    d.pod<double>(c.end_ms);
    d.pod<std::int32_t>(c.frames_in_buffer);
    d.pod<std::int32_t>(c.frames_tracked);
    d.pod<double>(c.mean_velocity);
  }
  d.pod<double>(run.energy.gpu_wh);
  d.pod<double>(run.energy.cpu_wh);
  d.pod<double>(run.energy.soc_wh);
  d.pod<double>(run.energy.ddr_wh);
  d.pod<double>(run.timeline_ms);
  d.pod<std::int32_t>(run.setting_switches);
  d.pod<double>(run.latency_multiplier);
  d.pod<std::uint64_t>(run.frame_store.renders);
  d.pod<std::uint64_t>(run.frame_store.re_renders);
  d.pod<std::uint64_t>(run.frame_store.hits);
  d.pod<std::uint64_t>(run.frame_store.precache_hits);
  d.pod<std::uint64_t>(run.frame_store.waits);
  d.pod<std::uint64_t>(run.frame_store.pool_reuses);
  d.pod<std::uint64_t>(run.frame_store.pool_allocs);
  d.pod<std::uint64_t>(run.frame_store.pool_returns);
  d.pod<std::uint64_t>(run.frame_store.pool_discards);
  return d.value();
}

}  // namespace adavp::core
