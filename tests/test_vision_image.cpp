#include <gtest/gtest.h>

#include <cstdio>

#include "vision/drawing.h"
#include "vision/image.h"
#include "vision/image_ops.h"
#include "vision/pgm.h"
#include "vision/pyramid.h"

namespace adavp::vision {
namespace {

TEST(ImageTest, ConstructionAndAccess) {
  ImageU8 img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_FALSE(img.empty());
  EXPECT_EQ(img.at(0, 0), 7);
  img.at(2, 1) = 42;
  EXPECT_EQ(img.at(2, 1), 42);
  EXPECT_EQ(img.pixels().size(), 12u);
}

TEST(ImageTest, DefaultIsEmpty) {
  ImageU8 img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.width(), 0);
}

TEST(ImageTest, ClampedAccessReplicatesBorder) {
  ImageU8 img(2, 2);
  img.at(0, 0) = 1;
  img.at(1, 0) = 2;
  img.at(0, 1) = 3;
  img.at(1, 1) = 4;
  EXPECT_EQ(img.at_clamped(-5, -5), 1);
  EXPECT_EQ(img.at_clamped(10, 0), 2);
  EXPECT_EQ(img.at_clamped(0, 10), 3);
  EXPECT_EQ(img.at_clamped(10, 10), 4);
}

TEST(ImageTest, FillSetsAllPixels) {
  ImageF32 img(3, 3, 1.0f);
  img.fill(2.5f);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) EXPECT_FLOAT_EQ(img.at(x, y), 2.5f);
  }
}

TEST(Bilinear, ExactAtIntegerCoordinates) {
  ImageF32 img(3, 3);
  img.at(1, 1) = 10.0f;
  EXPECT_FLOAT_EQ(sample_bilinear(img, 1.0f, 1.0f), 10.0f);
}

TEST(Bilinear, MidpointInterpolates) {
  ImageF32 img(2, 1);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 10.0f;
  EXPECT_FLOAT_EQ(sample_bilinear(img, 0.5f, 0.0f), 5.0f);
  EXPECT_FLOAT_EQ(sample_bilinear(img, 0.25f, 0.0f), 2.5f);
}

TEST(Bilinear, TwoDimensionalBlend) {
  ImageF32 img(2, 2);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 10.0f;
  img.at(0, 1) = 20.0f;
  img.at(1, 1) = 30.0f;
  EXPECT_FLOAT_EQ(sample_bilinear(img, 0.5f, 0.5f), 15.0f);
}

TEST(Convert, RoundTripU8Float) {
  ImageU8 img(2, 2);
  img.at(0, 0) = 5;
  img.at(1, 1) = 250;
  const ImageU8 back = to_u8(to_float(img));
  EXPECT_EQ(back.at(0, 0), 5);
  EXPECT_EQ(back.at(1, 1), 250);
}

TEST(Convert, ToU8Clamps) {
  ImageF32 img(2, 1);
  img.at(0, 0) = -10.0f;
  img.at(1, 0) = 300.0f;
  const ImageU8 out = to_u8(img);
  EXPECT_EQ(out.at(0, 0), 0);
  EXPECT_EQ(out.at(1, 0), 255);
}

TEST(Smooth, PreservesConstantImage) {
  ImageF32 img(8, 8, 42.0f);
  const ImageF32 s3 = smooth3(img);
  const ImageF32 s5 = smooth5(img);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_NEAR(s3.at(x, y), 42.0f, 1e-4f);
      EXPECT_NEAR(s5.at(x, y), 42.0f, 1e-4f);
    }
  }
}

TEST(Smooth, ReducesImpulseEnergy) {
  ImageF32 img(9, 9, 0.0f);
  img.at(4, 4) = 16.0f;
  const ImageF32 s = smooth3(img);
  EXPECT_NEAR(s.at(4, 4), 4.0f, 1e-4f);      // center weight (2*2)/16
  EXPECT_NEAR(s.at(3, 4), 2.0f, 1e-4f);      // edge weight (1*2)/16
  EXPECT_NEAR(s.at(3, 3), 1.0f, 1e-4f);      // corner weight (1*1)/16
}

TEST(Sobel, UnitRampHasUnitGradient) {
  ImageF32 img(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) img.at(x, y) = static_cast<float>(x);
  }
  ImageF32 gx;
  ImageF32 gy;
  sobel(img, gx, gy);
  // Interior pixels: d/dx = 1, d/dy = 0.
  for (int y = 2; y < 6; ++y) {
    for (int x = 2; x < 6; ++x) {
      EXPECT_NEAR(gx.at(x, y), 1.0f, 1e-4f);
      EXPECT_NEAR(gy.at(x, y), 0.0f, 1e-4f);
    }
  }
}

TEST(Sobel, VerticalRamp) {
  ImageF32 img(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) img.at(x, y) = 2.0f * static_cast<float>(y);
  }
  ImageF32 gx;
  ImageF32 gy;
  sobel(img, gx, gy);
  EXPECT_NEAR(gy.at(4, 4), 2.0f, 1e-4f);
  EXPECT_NEAR(gx.at(4, 4), 0.0f, 1e-4f);
}

TEST(Downsample, HalvesDimensions) {
  ImageF32 img(10, 6, 3.0f);
  const ImageF32 half = downsample2(img);
  EXPECT_EQ(half.width(), 5);
  EXPECT_EQ(half.height(), 3);
  EXPECT_NEAR(half.at(2, 1), 3.0f, 1e-4f);
}

TEST(Downsample, TinyImageUnchanged) {
  ImageF32 img(1, 1, 9.0f);
  const ImageF32 out = downsample2(img);
  EXPECT_EQ(out.width(), 1);
  EXPECT_FLOAT_EQ(out.at(0, 0), 9.0f);
}

TEST(MeanAbsDiff, IdenticalImagesZero) {
  ImageU8 a(4, 4, 10);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, a), 0.0);
}

TEST(MeanAbsDiff, KnownDifference) {
  ImageU8 a(2, 2, 10);
  ImageU8 b(2, 2, 13);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 3.0);
}

TEST(MeanAbsDiff, MismatchedSizesReturnZero) {
  ImageU8 a(2, 2);
  ImageU8 b(3, 3);
  EXPECT_DOUBLE_EQ(mean_abs_diff(a, b), 0.0);
}

TEST(Pyramid, LevelDimensionsHalve) {
  ImageU8 base(64, 48);
  ImagePyramid pyr(base, 3, /*min_dimension=*/8);
  ASSERT_EQ(pyr.levels(), 3);
  EXPECT_EQ(pyr.level(0).width(), 64);
  EXPECT_EQ(pyr.level(1).width(), 32);
  EXPECT_EQ(pyr.level(2).width(), 16);
  EXPECT_EQ(pyr.level(2).height(), 12);
}

TEST(Pyramid, StopsAtMinDimension) {
  ImageU8 base(40, 40);
  ImagePyramid pyr(base, 8, 16);
  // 40 -> 20 (>=16), 20/2=10 < 16 stops.
  EXPECT_EQ(pyr.levels(), 2);
}

TEST(Pyramid, EmptyInput) {
  ImagePyramid pyr(ImageU8{}, 3);
  EXPECT_TRUE(pyr.empty());
}

TEST(Drawing, BoxOutline) {
  ImageU8 img(10, 10, 0);
  draw_box(img, {2, 3, 4, 4}, 200);
  EXPECT_EQ(img.at(2, 3), 200);   // top-left corner
  EXPECT_EQ(img.at(6, 3), 200);   // top-right
  EXPECT_EQ(img.at(2, 7), 200);   // bottom-left
  EXPECT_EQ(img.at(4, 5), 0);     // interior untouched
}

TEST(Drawing, MarkerCross) {
  ImageU8 img(9, 9, 0);
  draw_marker(img, {4.0f, 4.0f}, 255, 2);
  EXPECT_EQ(img.at(4, 4), 255);
  EXPECT_EQ(img.at(6, 4), 255);
  EXPECT_EQ(img.at(4, 2), 255);
  EXPECT_EQ(img.at(5, 5), 0);
}

TEST(Drawing, OverlayDoesNotMutateInput) {
  ImageU8 frame(10, 10, 0);
  const ImageU8 out = overlay_boxes(frame, {{1, 1, 5, 5}});
  EXPECT_EQ(frame.at(1, 1), 0);
  EXPECT_EQ(out.at(1, 1), 255);
}

TEST(Pgm, RoundTrip) {
  ImageU8 img(5, 4);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      img.at(x, y) = static_cast<std::uint8_t>(y * 5 + x);
    }
  }
  const std::string path = ::testing::TempDir() + "/adavp_pgm_test.pgm";
  ASSERT_TRUE(write_pgm(img, path));
  const ImageU8 back = read_pgm(path);
  ASSERT_EQ(back.width(), 5);
  ASSERT_EQ(back.height(), 4);
  EXPECT_EQ(back.pixels(), img.pixels());
  std::remove(path.c_str());
}

TEST(Pgm, MissingFileReturnsEmpty) {
  EXPECT_TRUE(read_pgm("/nonexistent/definitely_missing.pgm").empty());
}

}  // namespace
}  // namespace adavp::vision
