// Fleet engine unit suite (DESIGN.md §13): the shared FleetGpu's
// conservative virtual-time scheduling (EDF + aging + batching), the
// admission controller's degrade-then-reject ladder, and whole-fleet
// determinism. The soak lives in tests/test_fleet_soak.cpp.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/fleet.h"
#include "detect/latency_model.h"
#include "util/fault_plan.h"

namespace adavp::core {
namespace {

using detect::ModelSetting;

// --- FleetGpu -----------------------------------------------------------

TEST(FleetGpu, SoloGrantIsBitIdenticalToSoloLatency) {
  FleetGpu gpu({.max_batch = 4}, /*stream_count=*/1);
  const FleetGpu::Grant grant = gpu.submit(
      {0, 0, ModelSetting::kYolov3Tiny_320, 10.0, 1010.0, 55.5});
  EXPECT_EQ(grant.start_ms, 10.0);
  EXPECT_EQ(grant.complete_ms, 10.0 + 55.5);  // batch_scale(1) == 1.0 exactly
  EXPECT_EQ(grant.batch_size, 1);
  EXPECT_EQ(grant.service_share_ms, 55.5);
  EXPECT_EQ(grant.queue_wait_ms, 0.0);
  gpu.finished(0);
}

TEST(FleetGpu, BackToBackRequestsQueueBehindGpuFree) {
  FleetGpu gpu({.max_batch = 4}, 1);
  const FleetGpu::Grant first = gpu.submit(
      {0, 0, ModelSetting::kYolov3Tiny_320, 0.0, 1000.0, 100.0});
  EXPECT_EQ(first.complete_ms, 100.0);
  // Submitted at t=20 while the GPU is busy until 100: waits 80.
  const FleetGpu::Grant second = gpu.submit(
      {0, 1, ModelSetting::kYolov3Tiny_320, 20.0, 1020.0, 100.0});
  EXPECT_EQ(second.start_ms, 100.0);
  EXPECT_EQ(second.queue_wait_ms, 80.0);
  gpu.finished(0);
}

TEST(FleetGpu, SameSettingSimultaneousRequestsBatchWithAmortization) {
  FleetGpu gpu({.max_batch = 4}, 2);
  FleetGpu::Grant a, b;
  std::thread ta([&] {
    a = gpu.submit({0, 0, ModelSetting::kYolov3Tiny_320, 0.0, 500.0, 50.0});
    gpu.finished(0);
  });
  std::thread tb([&] {
    b = gpu.submit({1, 0, ModelSetting::kYolov3Tiny_320, 0.0, 600.0, 60.0});
    gpu.finished(1);
  });
  ta.join();
  tb.join();
  const double service = 60.0 * detect::LatencyModel::batch_scale(2);
  EXPECT_EQ(a.batch_size, 2);
  EXPECT_EQ(b.batch_size, 2);
  EXPECT_DOUBLE_EQ(a.complete_ms, service);
  EXPECT_DOUBLE_EQ(b.complete_ms, service);
  EXPECT_DOUBLE_EQ(a.service_share_ms, service / 2.0);
  EXPECT_LT(service, 50.0 + 60.0);  // cheaper than running them back to back

  const FleetGpuStats stats = gpu.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch_seen, 2);
  EXPECT_GT(stats.amortization_saved_ms, 0.0);
}

TEST(FleetGpu, DifferentSettingsNeverShareABatch) {
  FleetGpu gpu({.max_batch = 4}, 2);
  FleetGpu::Grant a, b;
  std::thread ta([&] {
    a = gpu.submit({0, 0, ModelSetting::kYolov3Tiny_320, 0.0, 500.0, 50.0});
    gpu.finished(0);
  });
  std::thread tb([&] {
    b = gpu.submit({1, 0, ModelSetting::kYolov3_320, 0.0, 400.0, 230.0});
    gpu.finished(1);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.batch_size, 1);
  EXPECT_EQ(b.batch_size, 1);
  // EDF: the 320 request's deadline (400) beats tiny's (500), so it runs
  // first and tiny queues behind it — regardless of thread scheduling.
  EXPECT_EQ(b.start_ms, 0.0);
  EXPECT_EQ(a.start_ms, 230.0);
  EXPECT_EQ(a.queue_wait_ms, 230.0);
}

TEST(FleetGpu, AgingPreventsStarvationOfLaxDeadlines) {
  // Stream 1 keeps the GPU saturated with tight-deadline requests; stream
  // 0's single lax-deadline request must still run long before the fresh
  // deadlines would allow under pure EDF. With aging_factor=2 its priority
  // key (2000 - 2*wait) crosses a fresh key (~t + 100) near t ~ 633.
  FleetGpu gpu({.max_batch = 1, .aging_factor = 2.0}, 2);
  FleetGpu::Grant lax;
  std::thread ta([&] {
    lax = gpu.submit({0, 0, ModelSetting::kYolov3Tiny_320, 0.0, 2000.0, 100.0});
    gpu.finished(0);
  });
  std::thread tb([&] {
    double t = 0.0;
    for (int i = 0; i < 12; ++i) {
      const FleetGpu::Grant g = gpu.submit(
          {1, i, ModelSetting::kYolov3Tiny_320, t, t + 100.0, 100.0});
      t = g.complete_ms;
    }
    gpu.finished(1);
  });
  ta.join();
  tb.join();
  EXPECT_GE(lax.start_ms, 500.0);   // it did yield to tighter deadlines...
  EXPECT_LE(lax.start_ms, 900.0);   // ...but aging kicked in well before
  EXPECT_LE(lax.complete_ms, 1000.0);  // 12 tight cycles would end at 1200+
}

TEST(FleetGpu, HangBillsTheVictimButNotTheSharedSchedule) {
  // `gpu: hang at=0` wedges dispatch 0's first attempt: the watchdog
  // cancels it after hang_budget_ms and the retry lands, so the member
  // completes one budget late — but gpu_free advances by the un-faulted
  // service only (the recovery lane), so dispatch 1 is bit-identical to
  // an all-healthy schedule.
  const auto plan = util::FaultPlan::parse("gpu: hang at=0", 99);
  ASSERT_TRUE(plan.has_value());
  FleetGpu gpu({.max_batch = 4, .hang_budget_ms = 250.0, .retry_budget = 2},
               /*stream_count=*/1, plan->channel("gpu"));
  const FleetGpu::Grant first = gpu.submit(
      {0, 0, ModelSetting::kYolov3Tiny_320, 0.0, 1000.0, 100.0});
  EXPECT_EQ(first.hangs, 1);
  EXPECT_EQ(first.retries, 1);
  EXPECT_FALSE(first.failed);
  EXPECT_DOUBLE_EQ(first.complete_ms, 250.0 + 100.0);
  EXPECT_DOUBLE_EQ(first.service_share_ms, 100.0 + 250.0);
  // The shared lane ignored the hang: a request submitted at t=20 starts
  // at 100 (behind the clean service), exactly as with no fault plan.
  const FleetGpu::Grant second = gpu.submit(
      {0, 1, ModelSetting::kYolov3Tiny_320, 20.0, 1020.0, 100.0});
  EXPECT_EQ(second.hangs, 0);
  EXPECT_EQ(second.start_ms, 100.0);
  gpu.finished(0);

  const FleetGpuStats stats = gpu.stats();
  EXPECT_EQ(stats.hangs, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.failed_dispatches, 0u);
  EXPECT_DOUBLE_EQ(stats.recovery_ms, 250.0);
}

TEST(FleetGpu, WedgeExhaustsTheRetryBudgetAndFailsTheDispatch) {
  // `wedge` burns retry_budget+1 attempts at once: the dispatch fails
  // outright, the victim is billed retry_budget+1 watchdog budgets and no
  // service, and the grant comes back failed so the caller coasts.
  const auto plan = util::FaultPlan::parse("gpu: wedge at=0", 99);
  ASSERT_TRUE(plan.has_value());
  FleetGpu gpu({.max_batch = 4, .hang_budget_ms = 250.0, .retry_budget = 2},
               1, plan->channel("gpu"));
  const FleetGpu::Grant grant = gpu.submit(
      {0, 0, ModelSetting::kYolov3Tiny_320, 0.0, 1000.0, 100.0});
  EXPECT_TRUE(grant.failed);
  EXPECT_EQ(grant.hangs, 3);    // 1 + retry_budget attempts, all cancelled
  EXPECT_EQ(grant.retries, 2);  // retry_budget re-enqueues were burned
  EXPECT_DOUBLE_EQ(grant.complete_ms, 3 * 250.0);  // budgets only, no service
  gpu.finished(0);
  const FleetGpuStats stats = gpu.stats();
  EXPECT_EQ(stats.failed_dispatches, 1u);
  EXPECT_EQ(stats.hangs, 3u);
}

// --- admission control --------------------------------------------------

video::SceneConfig small_scene(std::uint64_t seed, int frames = 60) {
  video::SceneConfig scene;
  scene.width = 128;
  scene.height = 96;
  scene.frame_count = frames;
  scene.initial_objects = 3;
  scene.max_objects = 4;
  scene.seed = seed;
  return scene;
}

TEST(FleetAdmission, DegradesThenRejectsWhenOverSubscribed) {
  std::vector<FleetStreamOptions> streams(4);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    streams[i].scene = small_scene(100 + i);
    streams[i].engine.seed = 9000 + i;
    streams[i].setting = ModelSetting::kYolov3_608;  // 500 ms mean
    streams[i].cadence_ms = 100.0;                   // duty 5.0 each
    streams[i].deadline_ms = 1500.0;
  }
  const FleetResult fleet = run_fleet(streams);
  EXPECT_EQ(fleet.admitted, 0);
  EXPECT_GE(fleet.degraded, 2);
  EXPECT_GE(fleet.rejected, 1);
  for (const FleetStreamResult& s : fleet.streams) {
    if (s.admission == AdmissionDecision::kRejected) {
      EXPECT_TRUE(s.run.frames.empty());
      continue;
    }
    // Degraded streams got a cheaper setting and/or a stretched cadence...
    const bool cheaper =
        detect::LatencyModel::mean_latency_ms(s.granted_setting) <
        detect::LatencyModel::mean_latency_ms(ModelSetting::kYolov3_608);
    const bool stretched = s.granted_cadence_ms > 100.0;
    EXPECT_TRUE(cheaper || stretched) << s.name;
    // ...and still produced a result for every frame.
    for (const FrameResult& f : s.run.frames) {
      EXPECT_NE(f.source, ResultSource::kNone) << s.name;
    }
  }
}

TEST(FleetAdmission, RejectInsteadOfDegradeWhenDisabled) {
  std::vector<FleetStreamOptions> streams(2);
  for (std::size_t i = 0; i < streams.size(); ++i) {
    streams[i].scene = small_scene(200 + i);
    streams[i].setting = ModelSetting::kYolov3_608;
    streams[i].cadence_ms = 100.0;
  }
  FleetOptions options;
  options.admission.allow_degrade = false;
  const FleetResult fleet = run_fleet(streams, options);
  EXPECT_EQ(fleet.admitted, 0);
  EXPECT_EQ(fleet.degraded, 0);
  EXPECT_EQ(fleet.rejected, 2);
}

// --- whole-fleet behavior ----------------------------------------------

// FNV-1a over every observable field of a RunResult, the same digest
// construction test_engine_equivalence.cpp pins golden engines with.
class Digest {
 public:
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  template <typename T>
  void pod(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&value, sizeof(value));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

std::uint64_t digest_run(const RunResult& run) {
  Digest d;
  d.pod<std::uint64_t>(run.frames.size());
  for (const FrameResult& f : run.frames) {
    d.pod<std::int32_t>(f.frame_index);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.source));
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(f.setting));
    d.pod<double>(f.staleness_ms);
    d.pod<std::uint64_t>(f.boxes.size());
    for (const metrics::LabeledBox& b : f.boxes) {
      d.pod<float>(b.box.left);
      d.pod<float>(b.box.top);
      d.pod<float>(b.box.width);
      d.pod<float>(b.box.height);
      d.pod<std::uint8_t>(static_cast<std::uint8_t>(b.cls));
    }
  }
  d.pod<std::uint64_t>(run.cycles.size());
  for (const CycleRecord& c : run.cycles) {
    d.pod<std::int32_t>(c.detected_frame);
    d.pod<std::uint8_t>(static_cast<std::uint8_t>(c.setting));
    d.pod<double>(c.start_ms);
    d.pod<double>(c.end_ms);
    d.pod<std::int32_t>(c.frames_in_buffer);
    d.pod<std::int32_t>(c.frames_tracked);
    d.pod<double>(c.mean_velocity);
  }
  d.pod<double>(run.energy.gpu_wh);
  d.pod<double>(run.energy.cpu_wh);
  d.pod<double>(run.timeline_ms);
  return d.value();
}

std::vector<FleetStreamOptions> fleet_of(int n, int frames = 90) {
  std::vector<FleetStreamOptions> streams(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& s = streams[static_cast<std::size_t>(i)];
    s.scene = small_scene(static_cast<std::uint64_t>(300 + i), frames);
    s.engine.seed = static_cast<std::uint64_t>(5000 + i);
    s.setting = ModelSetting::kYolov3Tiny_320;
    s.cadence_ms = 400.0;
    s.deadline_ms = 800.0;
  }
  return streams;
}

TEST(Fleet, SingleStreamFleetCompletesEveryFrame) {
  const FleetResult fleet = run_fleet(fleet_of(1));
  ASSERT_EQ(fleet.streams.size(), 1u);
  const FleetStreamResult& s = fleet.streams[0];
  EXPECT_EQ(s.admission, AdmissionDecision::kAdmitted);
  EXPECT_TRUE(s.run.status.ok()) << s.run.status.to_string();
  ASSERT_EQ(s.run.frames.size(), 90u);
  for (const FrameResult& f : s.run.frames) {
    EXPECT_NE(f.source, ResultSource::kNone);
  }
  EXPECT_GT(s.queue.detections, 1u);
  EXPECT_GT(fleet.aggregate_fps, 0.0);
  EXPECT_GT(s.latency_p99_ms, 0.0);
  EXPECT_GE(s.latency_p99_ms, s.latency_p50_ms);
}

TEST(Fleet, DeterministicAcrossRepeatsAtBatchOneAndFour) {
  for (int max_batch : {1, 4}) {
    FleetOptions options;
    options.gpu.max_batch = max_batch;
    const FleetResult a = run_fleet(fleet_of(4), options);
    const FleetResult b = run_fleet(fleet_of(4), options);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
      EXPECT_EQ(digest_run(a.streams[i].run), digest_run(b.streams[i].run))
          << "stream " << i << " max_batch " << max_batch;
      EXPECT_EQ(a.streams[i].queue.detections, b.streams[i].queue.detections);
    }
    EXPECT_EQ(a.gpu.batches, b.gpu.batches);
    EXPECT_DOUBLE_EQ(a.makespan_ms, b.makespan_ms);
  }
}

TEST(Fleet, BatchingActuallyCoalesces) {
  // Zero stagger puts every stream's cadence in phase, so same-setting
  // requests collide at the queue and must form real batches.
  FleetOptions options;
  options.gpu.max_batch = 4;
  options.stagger_ms = 0.0;
  const FleetResult fleet = run_fleet(fleet_of(4), options);
  EXPECT_GT(fleet.gpu.requests, 0u);
  EXPECT_GT(fleet.gpu.max_batch_seen, 1);
  EXPECT_GT(fleet.gpu.amortization_saved_ms, 0.0);
  std::uint64_t batched = 0;
  for (const FleetStreamResult& s : fleet.streams) batched += s.queue.batched;
  EXPECT_GT(batched, 0u);
}

TEST(Fleet, ConsolidationBeatsSequentialInPipelineTime) {
  // 4 concurrent streams through one GPU vs the same 4 run one at a time:
  // the cadenced detector leaves the GPU mostly idle per stream, so the
  // fleet's makespan stays near one stream's duration.
  const std::vector<FleetStreamOptions> streams = fleet_of(4);
  const FleetResult fleet = run_fleet(streams);
  double sequential_ms = 0.0;
  for (const FleetStreamOptions& s : streams) {
    const FleetResult solo = run_fleet({s});
    sequential_ms += solo.streams[0].run.timeline_ms;
  }
  EXPECT_GT(sequential_ms / fleet.makespan_ms, 2.0);
}

}  // namespace
}  // namespace adavp::core
