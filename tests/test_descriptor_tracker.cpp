#include <gtest/gtest.h>

#include "track/descriptor_tracker.h"
#include "video/scene.h"

namespace adavp::track {
namespace {

video::SceneConfig tracking_scene(std::uint64_t seed = 3, int frames = 30,
                                  double speed = 1.0) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 3;
  cfg.max_objects = 4;
  cfg.speed_mean = speed;
  cfg.speed_jitter = 0.05;
  return cfg;
}

std::vector<detect::Detection> truth_as_detections(
    const video::SyntheticVideo& video, int frame) {
  std::vector<detect::Detection> dets;
  for (const auto& gt : video.ground_truth(frame)) {
    dets.push_back({gt.box, gt.cls, 1.0f});
  }
  return dets;
}

TEST(DescriptorTrackerTest, ExtractsKeypointsInsideBoxes) {
  const video::SyntheticVideo video(tracking_scene());
  DescriptorTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  EXPECT_EQ(tracker.object_count(),
            static_cast<int>(video.ground_truth(0).size()));
  EXPECT_GT(tracker.live_feature_count(), 0);
}

TEST(DescriptorTrackerTest, TracksAcrossFrames) {
  const video::SyntheticVideo video(tracking_scene(5, 20, 1.2));
  DescriptorTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  int total_tracked = 0;
  for (int f = 1; f <= 5; ++f) {
    total_tracked += tracker.track_to(video.render(f), 1).features_tracked;
  }
  EXPECT_GT(total_tracked, 0);
  const double f1 =
      metrics::score_boxes(tracker.current_boxes(), video.ground_truth(5), 0.5)
          .f1();
  EXPECT_GT(f1, 0.4);
}

TEST(DescriptorTrackerTest, HandlesLargeFrameGaps) {
  // Descriptor matching searches an inflated window, so even a 6-frame
  // jump (where LK would struggle without a deep pyramid) can match.
  const video::SyntheticVideo video(tracking_scene(7, 20, 1.5));
  DescriptorTracker tracker;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  const TrackStepStats stats = tracker.track_to(video.render(6), 6);
  EXPECT_EQ(stats.frame_gap, 6);
  EXPECT_GT(stats.features_tracked, 0);
}

TEST(DescriptorTrackerTest, EmptyDetectionsHarmless) {
  const video::SyntheticVideo video(tracking_scene());
  DescriptorTracker tracker;
  tracker.set_reference(video.render(0), {});
  EXPECT_EQ(tracker.object_count(), 0);
  const TrackStepStats stats = tracker.track_to(video.render(1), 1);
  EXPECT_EQ(stats.features_tracked, 0);
  EXPECT_TRUE(tracker.current_boxes().empty());
}

TEST(DescriptorTrackerTest, VelocitySignalScalesWithSpeed) {
  const video::SyntheticVideo slow(tracking_scene(13, 10, 0.3));
  const video::SyntheticVideo fast(tracking_scene(13, 10, 2.5));
  auto step_velocity = [](const video::SyntheticVideo& video) {
    DescriptorTracker tracker;
    std::vector<detect::Detection> dets;
    for (const auto& gt : video.ground_truth(0)) {
      dets.push_back({gt.box, gt.cls, 1.0f});
    }
    tracker.set_reference(video.render(0), dets);
    const TrackStepStats stats =
        tracker.track_to(video.render(2), 2);  // 2-frame gap: clearer signal
    if (stats.features_tracked == 0) return 0.0;
    return stats.displacement_sum / stats.features_tracked;
  };
  const double vs = step_velocity(slow);
  const double vf = step_velocity(fast);
  ASSERT_GT(vf, 0.0);
  EXPECT_GT(vf, vs);
}

TEST(DescriptorTrackerTest, WorksThroughTrackerInterface) {
  const video::SyntheticVideo video(tracking_scene(17));
  DescriptorTracker concrete;
  TrackerInterface& tracker = concrete;
  tracker.set_reference(video.render(0), truth_as_detections(video, 0));
  tracker.track_to(video.render(1), 1);
  EXPECT_FALSE(tracker.current_boxes().empty());
}

}  // namespace
}  // namespace adavp::track
