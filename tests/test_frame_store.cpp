#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/baselines.h"
#include "core/mpdt_pipeline.h"
#include "video/frame_store.h"
#include "video/scene.h"

namespace adavp::video {
namespace {

SceneConfig small_config(std::uint64_t seed = 5, int frames = 24) {
  SceneConfig cfg;
  cfg.width = 160;
  cfg.height = 120;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 3;
  return cfg;
}

// ----------------------------------------------------------- rendering ---

TEST(FrameStoreTest, GetMatchesDirectRender) {
  SyntheticVideo video(small_config(3, 8));
  FrameStore store(video);
  for (int f = 0; f < 8; ++f) {
    const FrameRef ref = store.get(f);
    ASSERT_TRUE(ref.valid());
    EXPECT_EQ(ref.index, f);
    EXPECT_DOUBLE_EQ(ref.timestamp_ms, video.timestamp_ms(f));
    EXPECT_EQ(ref.image().pixels(), video.render(f).pixels()) << "frame " << f;
  }
  const FrameStoreStats stats = store.stats();
  EXPECT_EQ(stats.renders, 8u);
  EXPECT_EQ(stats.re_renders, 0u);
}

TEST(FrameStoreTest, RepeatGetSharesPixelsWithoutRerender) {
  SyntheticVideo video(small_config(5, 6));
  FrameStore store(video);
  const FrameRef first = store.get(2);
  const FrameRef second = store.get(2);
  // Same raster, by reference: copying a FrameRef never copies pixels.
  EXPECT_EQ(first.image_ptr.get(), second.image_ptr.get());
  const FrameStoreStats stats = store.stats();
  EXPECT_EQ(stats.renders, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(FrameStoreTest, PrecachedVideoIsAliasedNotCopied) {
  SyntheticVideo video(small_config(7, 6));
  video.precache();
  FrameStore store(video);
  for (int f = 0; f < 6; ++f) {
    const FrameRef ref = store.get(f);
    // The ref points INTO the precache: zero-copy, zero-allocation.
    EXPECT_EQ(ref.image_ptr.get(), video.cached_frame(f)) << "frame " << f;
  }
  const FrameStoreStats stats = store.stats();
  EXPECT_EQ(stats.renders, 0u);
  EXPECT_EQ(stats.precache_hits, 6u);
  EXPECT_EQ(stats.pool_allocs, 0u);
  // Aliases are owned by the video, so the store holds no resident bytes.
  EXPECT_EQ(stats.resident_bytes, 0u);
}

// ---------------------------------------------------------- concurrency ---

// N threads hammer overlapping frame ranges; the per-slot latch must make
// every frame render exactly once, and every consumer must observe pixels
// identical to a serial render. Runs under TSan via the `concurrency` label.
TEST(FrameStoreTest, ConcurrentGetsRenderEachFrameOnce) {
  const int kFrames = 16;
  const int kThreads = 4;
  SceneConfig cfg = small_config(11, kFrames);
  SyntheticVideo video(cfg);
  SyntheticVideo reference(cfg);

  FrameStoreOptions opt;
  opt.window = kFrames;  // nothing may evict: any re-render is a bug
  FrameStore store(video, opt);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the whole video from a different start, so slots
      // see simultaneous first requests from several threads.
      for (int k = 0; k < kFrames; ++k) {
        const int f = (k + t * 3) % kFrames;
        const FrameRef ref = store.get(f);
        if (ref.image().pixels() != reference.render(f).pixels()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  const FrameStoreStats stats = store.stats();
  EXPECT_EQ(stats.renders, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(stats.re_renders, 0u);
  // Every get terminates in exactly one render or one hit (waiters become
  // hits once the rendering thread publishes).
  EXPECT_EQ(stats.hits + stats.renders,
            static_cast<std::uint64_t>(kFrames * kThreads));
}

// ----------------------------------------------------- pool / retention ---

TEST(FrameStoreTest, PoolRecyclesBuffersInSteadyState) {
  const int kFrames = 64;
  SyntheticVideo video(small_config(13, kFrames));
  FrameStoreOptions opt;
  opt.window = 4;
  opt.pool_buffers = 16;
  FrameStore store(video, opt);

  std::uint64_t allocs_mid = 0;
  for (int f = 0; f < kFrames; ++f) {
    store.trim_below(f - opt.window);
    (void)store.get(f);
    if (f == kFrames / 2) allocs_mid = store.stats().pool_allocs;
  }
  const FrameStoreStats stats = store.stats();
  EXPECT_EQ(stats.renders, static_cast<std::uint64_t>(kFrames));
  EXPECT_GT(stats.pool_reuses, 0u);
  // Once the pool is warm, streaming allocates nothing: the second half of
  // the video must be served entirely by recycled buffers.
  EXPECT_EQ(stats.pool_allocs, allocs_mid);
  EXPECT_LE(stats.resident_frames, static_cast<std::size_t>(opt.window + 1));
}

TEST(FrameStoreTest, TrimReleasesResidency) {
  SyntheticVideo video(small_config(17, 12));
  FrameStore store(video);
  for (int f = 0; f < 12; ++f) (void)store.get(f);
  const std::size_t before = store.stats().resident_bytes;
  EXPECT_GT(before, 0u);
  store.trim_below(12);  // everything is done
  const FrameStoreStats stats = store.stats();
  EXPECT_EQ(stats.resident_frames, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

TEST(FrameStoreTest, DegenerateModeReproducesPreStoreCosts) {
  SyntheticVideo video(small_config(19, 6));
  FrameStoreOptions opt;
  opt.window = 0;       // retain nothing behind the newest request
  opt.pool_buffers = 0; // never recycle
  FrameStore store(video, opt);
  (void)store.get(0);
  (void)store.get(1);  // evicts slot 0
  const FrameRef again = store.get(0);  // must re-render, like the old code
  EXPECT_EQ(again.image().pixels(), video.render(0).pixels());
  const FrameStoreStats stats = store.stats();
  EXPECT_EQ(stats.renders, 3u);
  EXPECT_EQ(stats.re_renders, 1u);
  EXPECT_EQ(stats.pool_reuses, 0u);
  EXPECT_EQ(stats.pool_allocs, 3u);
}

TEST(FrameStoreTest, OutstandingRefSurvivesEviction) {
  SyntheticVideo video(small_config(23, 8));
  FrameStoreOptions opt;
  opt.window = 0;
  FrameStore store(video, opt);
  const FrameRef kept = store.get(0);
  const std::vector<std::uint8_t> pixels_before = kept.image().pixels();
  for (int f = 1; f < 8; ++f) (void)store.get(f);  // slot 0 long evicted
  // The ref shares ownership: eviction releases the STORE's reference, the
  // pixels live on (and cannot have been recycled underneath the holder).
  EXPECT_EQ(kept.image().pixels(), pixels_before);
}

// ------------------------------------------------- pipeline equivalence ---

/// Bit-exact comparison of two deterministic (virtual-time) runs.
void expect_same(const core::RunResult& a, const core::RunResult& b) {
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    const auto& fa = a.frames[i];
    const auto& fb = b.frames[i];
    EXPECT_EQ(fa.source, fb.source) << "frame " << i;
    ASSERT_EQ(fa.boxes.size(), fb.boxes.size()) << "frame " << i;
    for (std::size_t j = 0; j < fa.boxes.size(); ++j) {
      EXPECT_EQ(fa.boxes[j].cls, fb.boxes[j].cls);
      EXPECT_EQ(fa.boxes[j].box.left, fb.boxes[j].box.left);
      EXPECT_EQ(fa.boxes[j].box.top, fb.boxes[j].box.top);
      EXPECT_EQ(fa.boxes[j].box.width, fb.boxes[j].box.width);
      EXPECT_EQ(fa.boxes[j].box.height, fb.boxes[j].box.height);
    }
  }
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.cycles.size(); ++i) {
    EXPECT_EQ(a.cycles[i].detected_frame, b.cycles[i].detected_frame);
    EXPECT_EQ(a.cycles[i].frames_tracked, b.cycles[i].frames_tracked);
    EXPECT_DOUBLE_EQ(a.cycles[i].end_ms, b.cycles[i].end_ms);
  }
}

// The FrameRef conversion must not change pipeline outputs: rendering is
// deterministic, so runs through the shared store, through the degenerate
// per-consumer-render mode, and over a precached video must produce
// bit-identical boxes and cycle schedules.
TEST(FrameStoreTest, MpdtOutputsIdenticalAcrossStoreModes) {
  const SceneConfig cfg = small_config(29, 60);

  core::MpdtOptions shared_opts;       // default: render-once shared store
  core::MpdtOptions degenerate_opts;   // pre-store cost model
  degenerate_opts.frame_store.window = 0;
  degenerate_opts.frame_store.pool_buffers = 0;

  SyntheticVideo video_a(cfg);
  const core::RunResult shared_run = core::run_mpdt(video_a, shared_opts);
  SyntheticVideo video_b(cfg);
  const core::RunResult degenerate_run =
      core::run_mpdt(video_b, degenerate_opts);
  SyntheticVideo video_c(cfg);
  video_c.precache();
  const core::RunResult precached_run = core::run_mpdt(video_c, shared_opts);

  expect_same(shared_run, degenerate_run);
  expect_same(shared_run, precached_run);

  // And the shared store actually behaved differently under the hood:
  // no frame rendered more than once vs. the degenerate mode's re-renders.
  EXPECT_EQ(shared_run.frame_store.re_renders, 0u);
  EXPECT_EQ(precached_run.frame_store.renders, 0u);
  EXPECT_GT(precached_run.frame_store.precache_hits, 0u);
}

TEST(FrameStoreTest, MarlinOutputsIdenticalAcrossStoreModes) {
  const SceneConfig cfg = small_config(31, 60);
  core::MarlinOptions shared_opts;
  core::MarlinOptions degenerate_opts;
  degenerate_opts.frame_store.window = 0;
  degenerate_opts.frame_store.pool_buffers = 0;
  SyntheticVideo video_a(cfg);
  const core::RunResult shared_run = core::run_marlin(video_a, shared_opts);
  SyntheticVideo video_b(cfg);
  const core::RunResult degenerate_run =
      core::run_marlin(video_b, degenerate_opts);
  expect_same(shared_run, degenerate_run);
}

// run_realtime is wall-clock scheduled, so two runs are not comparable
// frame-by-frame even in the same store mode; its FrameRef-conversion
// equivalence rests on GetMatchesDirectRender (store pixels == direct
// render, bit-exact) plus test_realtime's NoFrameRendersTwiceThroughTheStore
// (the conversion only removed redundant renders, never changed pixels).

}  // namespace
}  // namespace adavp::video
