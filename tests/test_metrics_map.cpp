#include <gtest/gtest.h>

#include "detect/detector.h"
#include "metrics/map.h"

namespace adavp::metrics {
namespace {

using detect::Detection;
using video::GroundTruthObject;
using video::ObjectClass;

Detection det(float l, float t, float w, float h, ObjectClass cls, float score) {
  return {{l, t, w, h}, cls, score};
}

GroundTruthObject gt(int id, float l, float t, float w, float h,
                     ObjectClass cls) {
  return {id, cls, {l, t, w, h}};
}

TEST(AveragePrecision, PerfectDetectorScoresOne) {
  std::vector<FrameDetections> frames(3);
  for (int f = 0; f < 3; ++f) {
    frames[static_cast<std::size_t>(f)].truth = {
        gt(0, 10.0f * f, 0, 10, 10, ObjectClass::kCar)};
    frames[static_cast<std::size_t>(f)].detections = {
        det(10.0f * f, 0, 10, 10, ObjectClass::kCar, 0.9f)};
  }
  const ApResult result = average_precision(frames, ObjectClass::kCar);
  EXPECT_DOUBLE_EQ(result.ap, 1.0);
  EXPECT_EQ(result.gt_count, 3);
}

TEST(AveragePrecision, NoDetectionsScoresZero) {
  std::vector<FrameDetections> frames(1);
  frames[0].truth = {gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  const ApResult result = average_precision(frames, ObjectClass::kCar);
  EXPECT_DOUBLE_EQ(result.ap, 0.0);
  EXPECT_EQ(result.detections, 0);
}

TEST(AveragePrecision, NoGroundTruthScoresZero) {
  std::vector<FrameDetections> frames(1);
  frames[0].detections = {det(0, 0, 10, 10, ObjectClass::kCar, 0.9f)};
  EXPECT_DOUBLE_EQ(average_precision(frames, ObjectClass::kCar).ap, 0.0);
}

TEST(AveragePrecision, HighRankedFalsePositiveHurtsMore) {
  // Two GT objects; one TP. A false positive ranked ABOVE the TP drags the
  // whole precision envelope; ranked below it does not affect AP.
  auto make_frames = [](float fp_score) {
    std::vector<FrameDetections> frames(1);
    frames[0].truth = {gt(0, 0, 0, 10, 10, ObjectClass::kCar),
                       gt(1, 50, 50, 10, 10, ObjectClass::kCar)};
    frames[0].detections = {
        det(0, 0, 10, 10, ObjectClass::kCar, 0.9f),     // TP
        det(100, 100, 8, 8, ObjectClass::kCar, fp_score)  // FP
    };
    return frames;
  };
  const double ap_fp_low =
      average_precision(make_frames(0.1f), ObjectClass::kCar).ap;
  const double ap_fp_high =
      average_precision(make_frames(0.99f), ObjectClass::kCar).ap;
  EXPECT_GT(ap_fp_low, ap_fp_high);
  EXPECT_DOUBLE_EQ(ap_fp_low, 0.5);   // recall caps at 0.5 with precision 1
  EXPECT_DOUBLE_EQ(ap_fp_high, 0.25); // TP arrives at precision 0.5
}

TEST(AveragePrecision, DoubleDetectionCountsOneTp) {
  std::vector<FrameDetections> frames(1);
  frames[0].truth = {gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  frames[0].detections = {det(0, 0, 10, 10, ObjectClass::kCar, 0.9f),
                          det(1, 0, 10, 10, ObjectClass::kCar, 0.8f)};
  const ApResult result = average_precision(frames, ObjectClass::kCar);
  // Second detection of the same object is a FP, but ranked below the TP,
  // so AP stays 1.0 (recall already complete).
  EXPECT_DOUBLE_EQ(result.ap, 1.0);
}

TEST(AveragePrecision, IouThresholdGates) {
  std::vector<FrameDetections> frames(1);
  frames[0].truth = {gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  frames[0].detections = {det(4, 0, 10, 10, ObjectClass::kCar, 0.9f)};  // IoU 0.43
  EXPECT_DOUBLE_EQ(average_precision(frames, ObjectClass::kCar, 0.4).ap, 1.0);
  EXPECT_DOUBLE_EQ(average_precision(frames, ObjectClass::kCar, 0.5).ap, 0.0);
}

TEST(MeanAp, AveragesOverGroundTruthClasses) {
  std::vector<FrameDetections> frames(1);
  frames[0].truth = {gt(0, 0, 0, 10, 10, ObjectClass::kCar),
                     gt(1, 50, 50, 10, 10, ObjectClass::kPerson)};
  frames[0].detections = {det(0, 0, 10, 10, ObjectClass::kCar, 0.9f)};
  // Car AP = 1, person AP = 0 -> mAP = 0.5.
  EXPECT_DOUBLE_EQ(mean_average_precision(frames), 0.5);
}

TEST(MeanAp, EmptyInput) { EXPECT_DOUBLE_EQ(mean_average_precision({}), 0.0); }

TEST(MeanAp, LargerSettingScoresHigherOnSyntheticVideo) {
  video::SceneConfig cfg;
  cfg.frame_count = 120;
  cfg.seed = 4;
  const video::SyntheticVideo video(cfg);
  auto map_for = [&](detect::ModelSetting setting) {
    detect::SimulatedDetector detector(7);
    std::vector<FrameDetections> frames;
    for (int f = 0; f < video.frame_count(); ++f) {
      FrameDetections fd;
      fd.truth = video.ground_truth(f);
      fd.detections = detector.detect(video, f, setting).detections;
      frames.push_back(std::move(fd));
    }
    return mean_average_precision(frames);
  };
  EXPECT_GT(map_for(detect::ModelSetting::kYolov3_608),
            map_for(detect::ModelSetting::kYolov3_320));
}

}  // namespace
}  // namespace adavp::metrics
