#include <gtest/gtest.h>

#include <tuple>

#include "geometry/box.h"
#include "geometry/point.h"
#include "util/rng.h"

namespace adavp::geometry {
namespace {

TEST(Point, Arithmetic) {
  const Point2f a{1.0f, 2.0f};
  const Point2f b{3.0f, -1.0f};
  EXPECT_EQ(a + b, Point2f(4.0f, 1.0f));
  EXPECT_EQ(a - b, Point2f(-2.0f, 3.0f));
  EXPECT_EQ(a * 2.0f, Point2f(2.0f, 4.0f));
  EXPECT_FLOAT_EQ(Point2f(3.0f, 4.0f).norm(), 5.0f);
}

TEST(SizeTest, Area) {
  EXPECT_EQ((Size{1280, 720}).area(), 921600);
  EXPECT_EQ((Size{0, 10}).area(), 0);
}

TEST(Box, BasicAccessors) {
  const BoundingBox box{10.0f, 20.0f, 30.0f, 40.0f};
  EXPECT_FLOAT_EQ(box.right(), 40.0f);
  EXPECT_FLOAT_EQ(box.bottom(), 60.0f);
  EXPECT_FLOAT_EQ(box.area(), 1200.0f);
  EXPECT_EQ(box.center(), Point2f(25.0f, 40.0f));
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE((BoundingBox{0, 0, 0, 5}).empty());
  EXPECT_FLOAT_EQ((BoundingBox{0, 0, -2, 5}).area(), 0.0f);
}

TEST(Box, ContainsIsHalfOpen) {
  const BoundingBox box{0.0f, 0.0f, 10.0f, 10.0f};
  EXPECT_TRUE(box.contains({0.0f, 0.0f}));
  EXPECT_TRUE(box.contains({9.99f, 9.99f}));
  EXPECT_FALSE(box.contains({10.0f, 5.0f}));
  EXPECT_FALSE(box.contains({-0.01f, 5.0f}));
}

TEST(Box, ShiftMovesWithoutResizing) {
  const BoundingBox box{1.0f, 2.0f, 3.0f, 4.0f};
  const BoundingBox shifted = box.shifted({5.0f, -1.0f});
  EXPECT_FLOAT_EQ(shifted.left, 6.0f);
  EXPECT_FLOAT_EQ(shifted.top, 1.0f);
  EXPECT_FLOAT_EQ(shifted.width, 3.0f);
  EXPECT_FLOAT_EQ(shifted.height, 4.0f);
}

TEST(Intersect, OverlappingBoxes) {
  const BoundingBox a{0, 0, 10, 10};
  const BoundingBox b{5, 5, 10, 10};
  const BoundingBox inter = intersect(a, b);
  EXPECT_FLOAT_EQ(inter.left, 5.0f);
  EXPECT_FLOAT_EQ(inter.top, 5.0f);
  EXPECT_FLOAT_EQ(inter.area(), 25.0f);
}

TEST(Intersect, DisjointBoxesAreEmpty) {
  EXPECT_TRUE(intersect({0, 0, 2, 2}, {5, 5, 2, 2}).empty());
}

TEST(Iou, IdenticalBoxesIsOne) {
  const BoundingBox a{3, 4, 10, 20};
  EXPECT_FLOAT_EQ(iou(a, a), 1.0f);
}

TEST(Iou, KnownOverlap) {
  // Half-overlapping unit squares: inter 0.5, union 1.5.
  const BoundingBox a{0, 0, 1, 1};
  const BoundingBox b{0.5f, 0, 1, 1};
  EXPECT_NEAR(iou(a, b), 0.5f / 1.5f, 1e-6f);
}

TEST(Iou, DisjointIsZero) {
  EXPECT_FLOAT_EQ(iou({0, 0, 1, 1}, {2, 2, 1, 1}), 0.0f);
}

TEST(Iou, EmptyBoxIsZero) {
  EXPECT_FLOAT_EQ(iou({0, 0, 0, 0}, {0, 0, 1, 1}), 0.0f);
}

TEST(Iou, ShiftedSquareMatchesClosedForm) {
  // A square of side s shifted by t*s along one axis has
  // IoU = (1 - t) / (1 + t).
  const float s = 20.0f;
  for (float t : {0.1f, 0.25f, 1.0f / 3.0f, 0.5f}) {
    const BoundingBox a{0, 0, s, s};
    const BoundingBox b{t * s, 0, s, s};
    EXPECT_NEAR(iou(a, b), (1.0f - t) / (1.0f + t), 1e-5f) << "t=" << t;
  }
}

TEST(ClampTo, InsideUnchanged) {
  const BoundingBox box{5, 5, 10, 10};
  EXPECT_EQ(clamp_to(box, {100, 100}), box);
}

TEST(ClampTo, CutsAtBorders) {
  const BoundingBox box{-5, -5, 20, 20};
  const BoundingBox clamped = clamp_to(box, {100, 100});
  EXPECT_FLOAT_EQ(clamped.left, 0.0f);
  EXPECT_FLOAT_EQ(clamped.top, 0.0f);
  EXPECT_FLOAT_EQ(clamped.width, 15.0f);
  EXPECT_FLOAT_EQ(clamped.height, 15.0f);
}

TEST(ClampTo, FullyOutsideBecomesEmpty) {
  EXPECT_TRUE(clamp_to({200, 200, 10, 10}, {100, 100}).empty());
}

// ------------------------------------------------- property-style sweeps --

class IouPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IouPropertyTest, SymmetricBoundedAndConsistent) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const BoundingBox a{static_cast<float>(rng.uniform(-50, 50)),
                        static_cast<float>(rng.uniform(-50, 50)),
                        static_cast<float>(rng.uniform(1, 60)),
                        static_cast<float>(rng.uniform(1, 60))};
    const BoundingBox b{static_cast<float>(rng.uniform(-50, 50)),
                        static_cast<float>(rng.uniform(-50, 50)),
                        static_cast<float>(rng.uniform(1, 60)),
                        static_cast<float>(rng.uniform(1, 60))};
    const float ab = iou(a, b);
    const float ba = iou(b, a);
    EXPECT_FLOAT_EQ(ab, ba);
    EXPECT_GE(ab, 0.0f);
    EXPECT_LE(ab, 1.0f);
    // IoU == 1 iff the boxes coincide.
    if (ab > 0.9999f) {
      EXPECT_NEAR(a.left, b.left, 1e-3f);
      EXPECT_NEAR(a.top, b.top, 1e-3f);
    }
    // Intersection area is bounded by each box's area.
    const float inter = intersect(a, b).area();
    EXPECT_LE(inter, a.area() + 1e-3f);
    EXPECT_LE(inter, b.area() + 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace adavp::geometry
