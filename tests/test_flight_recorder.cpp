#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/mpdt_pipeline.h"
#include "core/offload.h"
#include "core/training.h"
#include "json_test_util.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "video/scene.h"

namespace adavp::obs {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

// ----------------------------------------------------------------- ring

TEST(FlightRecorder, KeepsOnlyTheMostRecentEventsOldestFirst) {
  FlightRecorder recorder(8);
  for (int i = 0; i < 20; ++i) {
    recorder.instant(i * 10, "tick", "test", i);
  }
  EXPECT_EQ(recorder.total_recorded(), 20u);
  EXPECT_EQ(recorder.capacity(), 8u);
  const std::vector<SpanEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring kept ticks 12..19, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, static_cast<std::int64_t>(12 + i));
    EXPECT_STREQ(events[i].name, "tick");
  }
}

TEST(FlightRecorder, SnapshotBeforeWrapReturnsEverything) {
  FlightRecorder recorder(16);
  recorder.instant(1, "a", "test");
  recorder.instant(2, "b", "test");
  const std::vector<SpanEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(events[0].begin_us, events[0].end_us);  // instants are points
}

TEST(FlightRecorder, ClearEmptiesTheRing) {
  FlightRecorder recorder(8);
  recorder.instant(1, "a", "test");
  recorder.clear();
  EXPECT_EQ(recorder.total_recorded(), 0u);
  EXPECT_TRUE(recorder.snapshot().empty());
}

TEST(FlightRecorder, RecordKeepsFullSpanPayload) {
  FlightRecorder recorder(8);
  SpanEvent event;
  event.name = "detect";
  event.category = "detector";
  event.tid = 3;
  event.depth = 2;
  event.begin_us = 100;
  event.end_us = 250;
  event.arg = 42;
  event.arg_name = "frame";
  recorder.record(event);
  const std::vector<SpanEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "detect");
  EXPECT_STREQ(events[0].category, "detector");
  EXPECT_EQ(events[0].tid, 3u);
  EXPECT_EQ(events[0].depth, 2u);
  EXPECT_EQ(events[0].begin_us, 100);
  EXPECT_EQ(events[0].end_us, 250);
  EXPECT_EQ(events[0].arg, 42);
  EXPECT_STREQ(events[0].arg_name, "frame");
}

// ---------------------------------------------------------- concurrency

// Writers hammer a deliberately tiny ring while a reader drains snapshots.
// The seqlock contract under test: every snapshotted entry is internally
// consistent — its (name, arg) pair always comes from one writer — even
// when entries are being overwritten mid-read. TSan runs this through the
// `concurrency` ctest label.
TEST(FlightRecorder, ConcurrentWritersAndSnapshotsStayCoherent) {
  FlightRecorder recorder(32);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  static constexpr const char* kNames[kWriters] = {"w0", "w1", "w2", "w3"};

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const SpanEvent& event : recorder.snapshot()) {
        // A torn entry would pair one writer's name with another's arg.
        const std::string name = event.name;
        ASSERT_EQ(name.size(), 2u);
        const int writer = name[1] - '0';
        ASSERT_GE(writer, 0);
        ASSERT_LT(writer, kWriters);
        ASSERT_EQ(event.arg % kWriters, writer);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        recorder.instant(i, kNames[t], "test", i * kWriters + t);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(recorder.total_recorded(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(recorder.snapshot().size(), recorder.capacity());
}

// Two whole engines run concurrently against the one global flight ring —
// the deployment shape the recorder exists for. Both runs must complete,
// the ring must hold events from the runs, and the dump must still be a
// loadable Chrome trace.
TEST(FlightRecorder, TwoEnginesRecordConcurrentlyAndDumpParses) {
  video::SceneConfig scene;
  scene.width = 192;
  scene.height = 120;
  scene.frame_count = 60;
  scene.seed = 21;
  scene.initial_objects = 3;
  video::SyntheticVideo video_a(scene);
  scene.seed = 22;
  video::SyntheticVideo video_b(scene);
  const adapt::ModelAdapter adapter = core::pretrained_adapter();

  Telemetry::set_enabled(true);
  Telemetry::set_flight_enabled(true);
  Telemetry::instance().reset();

  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)flight().snapshot();  // concurrent reads while engines write
      std::this_thread::yield();
    }
  });
  core::RunResult result_a;
  std::thread engine_a([&] {
    core::MpdtOptions options;
    options.adapter = &adapter;
    options.seed = 21;
    result_a = run_mpdt(video_a, options);
  });
  core::OffloadOptions offload;
  offload.seed = 22;
  offload.codec_quality = 40;
  const core::RunResult result_b = run_offload(video_b, offload);
  engine_a.join();
  stop.store(true);
  drainer.join();

  EXPECT_TRUE(result_a.status.ok()) << result_a.status.to_string();
  EXPECT_TRUE(result_b.status.ok()) << result_b.status.to_string();
  EXPECT_GT(flight().total_recorded(), 0u);

  const std::string json = Telemetry::instance().export_flight_json();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc));
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<std::string> names;
  for (const JsonValue& event : events->array) {
    if (event.get("ph")->str == "M") continue;
    names.insert(event.get("name")->str);
  }
  EXPECT_FALSE(names.empty());

  Telemetry::instance().reset();
  Telemetry::set_flight_enabled(false);
  Telemetry::set_enabled(false);
}

// ------------------------------------------------------- telemetry gates

TEST(FlightRecorder, FlightOnlySpansRecordWithoutTheTracer) {
  // The flight gate is independent of Telemetry::enabled(): a production
  // run can fly with the black box armed and everything else off.
  Telemetry::set_enabled(false);
  Telemetry::set_flight_enabled(true);
  Telemetry::instance().reset();
  {
    ScopedSpan span("black_box_only", "test");
  }
  flight_instant("marker", "test", 7);
  EXPECT_EQ(tracer().buffered(), 0u);  // the tracer never saw them
  const std::vector<SpanEvent> events = flight().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "black_box_only");
  EXPECT_STREQ(events[1].name, "marker");
  Telemetry::instance().reset();
  Telemetry::set_flight_enabled(false);
}

TEST(FlightRecorder, DisabledFlightRecordsNothing) {
  Telemetry::set_flight_enabled(false);
  Telemetry::set_enabled(false);
  Telemetry::instance().reset();
  {
    ScopedSpan span("ghost", "test");
  }
  flight_instant("ghost_marker", "test");
  EXPECT_EQ(flight().total_recorded(), 0u);
}

TEST(FlightRecorder, MaybeFlightDumpWritesOnlyWhenArmedAndNonEmpty) {
  const std::string path = ::testing::TempDir() + "flight_dump.json";
  std::remove(path.c_str());
  Telemetry& telemetry = Telemetry::instance();
  Telemetry::set_flight_enabled(true);
  telemetry.reset();
  telemetry.set_flight_dump_path(path);

  // Empty ring: nothing to dump.
  EXPECT_FALSE(telemetry.maybe_flight_dump("worker_failure"));
  EXPECT_FALSE(std::ifstream(path).good());

  flight_instant("fault", "test", 3);
  EXPECT_TRUE(telemetry.maybe_flight_dump("worker_failure"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).parse(doc));
  // The dump names its trigger as the final instant event.
  bool saw_trigger = false;
  for (const JsonValue& event : doc.get("traceEvents")->array) {
    if (event.get("name")->str == "worker_failure") saw_trigger = true;
  }
  EXPECT_TRUE(saw_trigger);

  // Disarmed: no dump even with events buffered.
  telemetry.set_flight_dump_path("");
  EXPECT_FALSE(telemetry.maybe_flight_dump("worker_failure"));

  telemetry.reset();
  Telemetry::set_flight_enabled(false);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adavp::obs
