#include <gtest/gtest.h>

#include "detect/calibration.h"
#include "detect/detector.h"
#include "metrics/matching.h"
#include "util/stats.h"
#include "video/scene.h"

namespace adavp::detect {
namespace {

using video::GroundTruthObject;
using video::ObjectClass;

std::vector<GroundTruthObject> sample_truth() {
  return {
      {0, ObjectClass::kCar, {40, 40, 50, 36}},
      {1, ObjectClass::kTruck, {150, 60, 64, 48}},
      {2, ObjectClass::kPerson, {260, 100, 30, 54}},
      {3, ObjectClass::kCar, {90, 140, 44, 32}},
      {4, ObjectClass::kBus, {200, 150, 70, 44}},
  };
}

// ------------------------------------------------------- ModelSetting ----

TEST(ModelSettingTest, InputSizes) {
  EXPECT_EQ(input_size(ModelSetting::kYolov3_320), 320);
  EXPECT_EQ(input_size(ModelSetting::kYolov3_416), 416);
  EXPECT_EQ(input_size(ModelSetting::kYolov3_512), 512);
  EXPECT_EQ(input_size(ModelSetting::kYolov3_608), 608);
  EXPECT_EQ(input_size(ModelSetting::kYolov3Tiny_320), 320);
  EXPECT_EQ(input_size(ModelSetting::kYolov3_704_Oracle), 704);
}

TEST(ModelSettingTest, AdaptiveSetMembership) {
  for (ModelSetting s : kAdaptiveSettings) {
    EXPECT_TRUE(is_adaptive(s));
  }
  EXPECT_FALSE(is_adaptive(ModelSetting::kYolov3Tiny_320));
  EXPECT_FALSE(is_adaptive(ModelSetting::kYolov3_704_Oracle));
  EXPECT_EQ(adaptive_index(ModelSetting::kYolov3_320), 0);
  EXPECT_EQ(adaptive_index(ModelSetting::kYolov3_608), 3);
  EXPECT_FALSE(adaptive_index(ModelSetting::kYolov3Tiny_320).has_value());
}

TEST(ModelSettingTest, NamesMatchPaper) {
  EXPECT_EQ(setting_name(ModelSetting::kYolov3_512), "YOLOv3-512");
  EXPECT_EQ(setting_name(ModelSetting::kYolov3Tiny_320), "YOLOv3-tiny-320");
}

// ------------------------------------------------------- LatencyModel ----

TEST(LatencyModelTest, MeansMatchFigure1Anchors) {
  // Fig. 1 / Table II: latency grows 230 -> 500 ms with the frame size.
  EXPECT_NEAR(LatencyModel::mean_latency_ms(ModelSetting::kYolov3_320), 230.0, 1.0);
  EXPECT_NEAR(LatencyModel::mean_latency_ms(ModelSetting::kYolov3_608), 500.0, 1.0);
  EXPECT_LT(LatencyModel::mean_latency_ms(ModelSetting::kYolov3Tiny_320), 60.0);
  // Monotone in input size.
  double prev = 0.0;
  for (ModelSetting s : kAdaptiveSettings) {
    const double mean = LatencyModel::mean_latency_ms(s);
    EXPECT_GT(mean, prev);
    prev = mean;
  }
}

TEST(LatencyModelTest, SamplesClusterAroundMean) {
  LatencyModel model(3);
  util::RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    stats.add(model.sample_ms(ModelSetting::kYolov3_512));
  }
  EXPECT_NEAR(stats.mean(), 412.0, 4.0);
  EXPECT_GT(stats.min(), 206.0);  // clamped at half the mean
}

TEST(LatencyModelTest, Deterministic) {
  LatencyModel a(9);
  LatencyModel b(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.sample_ms(ModelSetting::kYolov3_320),
                     b.sample_ms(ModelSetting::kYolov3_320));
  }
}

// ------------------------------------------------------- batch scaling ----

TEST(LatencyModelTest, BatchOfOneIsExactlyNeutral) {
  // The fleet's determinism hinge: with batching disabled (or a batch that
  // happens to have one member) the grant latency must be *bit-identical*
  // to a solo detection, so batch_scale(1) is exactly 1.0 — an early-out,
  // not pow(1, alpha), which could differ in the last ulp.
  EXPECT_EQ(LatencyModel::batch_scale(1), 1.0);
  EXPECT_EQ(LatencyModel::batch_scale(0), 1.0);
  EXPECT_EQ(LatencyModel::amortized_scale(1), 1.0);
  LatencyModel a(9);
  LatencyModel b(9);
  const double solo = a.sample_ms(ModelSetting::kYolov3_320);
  EXPECT_EQ(solo * LatencyModel::batch_scale(1),
            b.sample_ms(ModelSetting::kYolov3_320));
}

TEST(LatencyModelTest, BatchCurveGrowsSublinearly) {
  // Total batch service grows with k, but slower than k (that is the whole
  // amortization), so the per-member share strictly falls.
  double prev_total = 0.0;
  double prev_share = 2.0;
  for (int k = 1; k <= 16; ++k) {
    const double total = LatencyModel::batch_scale(k);
    const double share = LatencyModel::amortized_scale(k);
    EXPECT_GT(total, prev_total) << "k=" << k;
    EXPECT_LT(total, static_cast<double>(k) + 1e-12) << "k=" << k;
    EXPECT_LT(share, prev_share) << "k=" << k;
    EXPECT_NEAR(share, total / k, 1e-12);
    prev_total = total;
    prev_share = share;
  }
  // Spot anchors of k^0.65 the docs and PERFORMANCE.md quote.
  EXPECT_NEAR(LatencyModel::batch_scale(2), 1.569, 0.001);
  EXPECT_NEAR(LatencyModel::batch_scale(4), 2.462, 0.001);
  EXPECT_NEAR(LatencyModel::batch_scale(8), 3.864, 0.001);
}

// ------------------------------------------------------ AccuracyModel ----

TEST(AccuracyModelTest, OracleReturnsGroundTruth) {
  AccuracyModel model(1);
  const auto truth = sample_truth();
  const auto detections =
      model.detect(truth, {384, 216}, ModelSetting::kYolov3_704_Oracle);
  ASSERT_EQ(detections.size(), truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(detections[i].cls, truth[i].cls);
    EXPECT_FLOAT_EQ(geometry::iou(detections[i].box, truth[i].box), 1.0f);
  }
}

TEST(AccuracyModelTest, EmptySceneYieldsOnlyBackgroundFalsePositives) {
  AccuracyModel model(2);
  util::RunningStats fp;
  for (int i = 0; i < 500; ++i) {
    fp.add(static_cast<double>(
        model.detect({}, {384, 216}, ModelSetting::kYolov3_512).size()));
  }
  // Poisson(bg_fp_per_frame = 0.30).
  EXPECT_NEAR(fp.mean(), 0.30, 0.07);
}

/// Empirical F1 of a setting over many synthetic frames must land on the
/// paper's Fig. 1 anchors -- this pins the whole calibration.
class DetectorCalibrationTest : public ::testing::TestWithParam<ModelSetting> {};

TEST_P(DetectorCalibrationTest, EmpiricalF1MatchesAnchor) {
  const ModelSetting setting = GetParam();
  const ModelProfile& profile = model_profile(setting);

  video::SceneConfig cfg;
  cfg.frame_count = 400;
  cfg.seed = 1234;
  cfg.initial_objects = 5;
  const video::SyntheticVideo video(cfg);

  SimulatedDetector detector(77);
  util::RunningStats f1;
  for (int f = 0; f < video.frame_count(); ++f) {
    const DetectionResult result = detector.detect(video, f, setting);
    f1.add(metrics::score_frame(result.detections, video.ground_truth(f), 0.5)
               .f1());
  }
  EXPECT_NEAR(f1.mean(), profile.f1_anchor, 0.06)
      << setting_name(setting) << " calibration drifted";
}

INSTANTIATE_TEST_SUITE_P(AllSettings, DetectorCalibrationTest,
                         ::testing::Values(ModelSetting::kYolov3_320,
                                           ModelSetting::kYolov3_416,
                                           ModelSetting::kYolov3_512,
                                           ModelSetting::kYolov3_608,
                                           ModelSetting::kYolov3Tiny_320));

TEST(AccuracyModelTest, LargerSettingsAreMoreAccurate) {
  video::SceneConfig cfg;
  cfg.frame_count = 250;
  cfg.seed = 99;
  const video::SyntheticVideo video(cfg);

  double prev = -1.0;
  for (ModelSetting setting : kAdaptiveSettings) {
    SimulatedDetector detector(5);
    util::RunningStats f1;
    for (int f = 0; f < video.frame_count(); ++f) {
      const auto result = detector.detect(video, f, setting);
      f1.add(metrics::score_frame(result.detections, video.ground_truth(f), 0.5)
                 .f1());
    }
    EXPECT_GT(f1.mean(), prev) << setting_name(setting);
    prev = f1.mean();
  }
}

TEST(AccuracyModelTest, StricterIouLowersF1) {
  video::SceneConfig cfg;
  cfg.frame_count = 200;
  cfg.seed = 7;
  const video::SyntheticVideo video(cfg);
  SimulatedDetector detector(11);
  util::RunningStats at05;
  util::RunningStats at06;
  for (int f = 0; f < video.frame_count(); ++f) {
    const auto result = detector.detect(video, f, ModelSetting::kYolov3_320);
    at05.add(
        metrics::score_frame(result.detections, video.ground_truth(f), 0.5).f1());
    at06.add(
        metrics::score_frame(result.detections, video.ground_truth(f), 0.6).f1());
  }
  EXPECT_LT(at06.mean(), at05.mean());
}

TEST(AccuracyModelTest, DetectionsStayInsideFrame) {
  AccuracyModel model(13);
  const geometry::Size size{384, 216};
  for (int i = 0; i < 200; ++i) {
    for (const auto& det :
         model.detect(sample_truth(), size, ModelSetting::kYolov3_320)) {
      EXPECT_GE(det.box.left, 0.0f);
      EXPECT_GE(det.box.top, 0.0f);
      EXPECT_LE(det.box.right(), 384.0f + 1e-3f);
      EXPECT_LE(det.box.bottom(), 216.0f + 1e-3f);
    }
  }
}

TEST(SimulatedDetectorTest, ReportsSettingFrameAndLatency) {
  video::SceneConfig cfg;
  cfg.frame_count = 3;
  const video::SyntheticVideo video(cfg);
  SimulatedDetector detector(21);
  const DetectionResult result =
      detector.detect(video, 2, ModelSetting::kYolov3_416);
  EXPECT_EQ(result.frame_index, 2);
  EXPECT_EQ(result.setting, ModelSetting::kYolov3_416);
  EXPECT_GT(result.latency_ms, 150.0);
  EXPECT_LT(result.latency_ms, 500.0);
}

TEST(CalibrationConstants, TableIIValues) {
  EXPECT_DOUBLE_EQ(kFeatureExtractionMs, 40.0);
  EXPECT_DOUBLE_EQ(kTrackingMinMs, 7.0);
  EXPECT_DOUBLE_EQ(kTrackingMaxMs, 20.0);
  EXPECT_DOUBLE_EQ(kOverlayMs, 50.0);
  EXPECT_LT(kMotionFeatureExtractMs + kSettingSwitchMs, 1.0);
}

}  // namespace
}  // namespace adavp::detect
