#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/mpdt_pipeline.h"
#include "core/scoring.h"
#include "metrics/accuracy.h"
#include "util/stats.h"

namespace adavp::core {
namespace {

video::SceneConfig scene(std::uint64_t seed = 3, int frames = 200,
                         double speed = 1.2, double pan = 0.5) {
  video::SceneConfig cfg;
  cfg.width = 256;
  cfg.height = 160;
  cfg.frame_count = frames;
  cfg.seed = seed;
  cfg.initial_objects = 4;
  cfg.speed_mean = speed;
  cfg.camera_pan = pan;
  return cfg;
}

// -------------------------------------------------------------- MARLIN ---

TEST(MarlinBaseline, CoversAllFrames) {
  const video::SyntheticVideo video(scene());
  MarlinOptions options;
  const RunResult run = run_marlin(video, options);
  ASSERT_EQ(run.frames.size(), static_cast<std::size_t>(video.frame_count()));
  for (const auto& frame : run.frames) {
    EXPECT_NE(frame.source, ResultSource::kNone);
  }
}

TEST(MarlinBaseline, SequentialTimelineNeverOverlaps) {
  // In MARLIN the tracker pauses during detection, so detections are
  // strictly ordered and frames between them are tracker/reuse outputs.
  const video::SyntheticVideo video(scene(5));
  const RunResult run = run_marlin(video, {});
  int prev_detected = -1;
  for (const auto& cycle : run.cycles) {
    EXPECT_GT(cycle.detected_frame, prev_detected);
    prev_detected = cycle.detected_frame;
  }
}

TEST(MarlinBaseline, FastContentTriggersMoreDetections) {
  const video::SyntheticVideo slow(scene(7, 240, 0.25, 0.0));
  const video::SyntheticVideo fast(scene(7, 240, 2.8, 2.0));
  MarlinOptions options;
  const std::size_t slow_detections = run_marlin(slow, options).cycles.size();
  const std::size_t fast_detections = run_marlin(fast, options).cycles.size();
  EXPECT_GT(fast_detections, slow_detections);
}

TEST(MarlinBaseline, KeyframeGuardBoundsCycleLength) {
  // Even a static scene must re-detect within max_cycle_ms.
  const video::SyntheticVideo video(scene(9, 300, 0.1, 0.0));
  MarlinOptions options;
  options.displacement_trigger_px = 1e9;  // drift never triggers
  options.min_feature_fraction = 0.0;
  options.max_cycle_ms = 1500.0;
  const RunResult run = run_marlin(video, options);
  // 10 s of video / 1.5 s guard -> at least ~5 detections.
  EXPECT_GE(run.cycles.size(), 5u);
}

TEST(MarlinBaseline, DeterministicGivenSeed) {
  const video::SyntheticVideo video(scene(11, 150));
  MarlinOptions options;
  options.seed = 42;
  const RunResult a = run_marlin(video, options);
  const RunResult b = run_marlin(video, options);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  for (std::size_t i = 0; i < a.frames.size(); ++i) {
    EXPECT_EQ(a.frames[i].boxes.size(), b.frames[i].boxes.size());
  }
}

TEST(MarlinBaseline, MpdtBeatsMarlinOnChallengingVideo) {
  // The paper's §VI-C: parallel detection+tracking outperforms sequential
  // MARLIN, especially on fast-changing content.
  const video::SyntheticVideo video(scene(13, 300, 2.2, 1.5));
  MpdtOptions mpdt;
  mpdt.setting = detect::ModelSetting::kYolov3_512;
  MarlinOptions marlin;
  marlin.setting = detect::ModelSetting::kYolov3_512;
  const double mpdt_acc =
      metrics::video_accuracy(score_run(run_mpdt(video, mpdt), video, 0.5), 0.7);
  const double marlin_acc = metrics::video_accuracy(
      score_run(run_marlin(video, marlin), video, 0.5), 0.7);
  EXPECT_GE(mpdt_acc, marlin_acc);
}

// --------------------------------------------------------- DetectOnly ----

TEST(DetectOnlyBaseline, CoversAllFramesWithReuse) {
  const video::SyntheticVideo video(scene(15));
  const RunResult run = run_detect_only(video, {});
  int detected = 0;
  int reused = 0;
  for (const auto& frame : run.frames) {
    EXPECT_NE(frame.source, ResultSource::kNone);
    EXPECT_NE(frame.source, ResultSource::kTracker);  // no tracker here
    if (frame.source == ResultSource::kDetector) ++detected;
    if (frame.source == ResultSource::kReused) ++reused;
  }
  EXPECT_GT(detected, 0);
  EXPECT_GT(reused, detected);  // detection latency >> frame interval
}

TEST(DetectOnlyBaseline, DetectionSpacingFollowsLatency) {
  const video::SyntheticVideo video(scene(17, 300));
  DetectOnlyOptions options;
  options.setting = detect::ModelSetting::kYolov3_320;
  const RunResult run = run_detect_only(video, options);
  // 230 ms / 33.3 ms ~ 7 frames between detections.
  std::vector<double> gaps;
  for (std::size_t i = 1; i < run.cycles.size(); ++i) {
    gaps.push_back(static_cast<double>(run.cycles[i].detected_frame -
                                       run.cycles[i - 1].detected_frame));
  }
  EXPECT_NEAR(util::mean(gaps), 7.0, 1.5);
}

TEST(DetectOnlyBaseline, TrackingHelpsOnMovingContent) {
  // §VI-C: MPDT beats the no-tracking scheme because reused results go
  // stale as objects move.
  const video::SyntheticVideo video(scene(19, 300, 1.8, 1.0));
  MpdtOptions mpdt;
  mpdt.setting = detect::ModelSetting::kYolov3_512;
  DetectOnlyOptions detect_only;
  detect_only.setting = detect::ModelSetting::kYolov3_512;
  const double mpdt_acc =
      metrics::video_accuracy(score_run(run_mpdt(video, mpdt), video, 0.5), 0.7);
  const double only_acc = metrics::video_accuracy(
      score_run(run_detect_only(video, detect_only), video, 0.5), 0.7);
  EXPECT_GT(mpdt_acc, only_acc);
}

// --------------------------------------------------------- Continuous ----

TEST(ContinuousBaseline, ProcessesEveryFrame) {
  const video::SyntheticVideo video(scene(21, 100));
  const RunResult run = run_continuous(video, {});
  for (const auto& frame : run.frames) {
    EXPECT_EQ(frame.source, ResultSource::kDetector);
  }
  EXPECT_EQ(run.cycles.size(), 100u);
}

TEST(ContinuousBaseline, LatencyMultiplierMatchesPaper) {
  const video::SyntheticVideo video(scene(23, 100));
  DetectOnlyOptions options;
  options.setting = detect::ModelSetting::kYolov3_320;
  const RunResult run = run_continuous(video, options);
  // Table III: YOLOv3-320 without skipping has ~7x latency (230/33.3).
  EXPECT_NEAR(run.latency_multiplier, 6.9, 0.5);

  options.setting = detect::ModelSetting::kYolov3Tiny_320;
  const RunResult tiny = run_continuous(video, options);
  // YOLOv3-tiny-320: ~1.8x.
  EXPECT_NEAR(tiny.latency_multiplier, 1.7, 0.3);
}

TEST(ContinuousBaseline, HighestAccuracyButHugeEnergy) {
  const video::SyntheticVideo video(scene(25, 150));
  DetectOnlyOptions continuous;
  continuous.setting = detect::ModelSetting::kYolov3_608;
  const RunResult cont = run_continuous(video, continuous);

  MpdtOptions mpdt;
  mpdt.setting = detect::ModelSetting::kYolov3_512;
  const RunResult pipeline = run_mpdt(video, mpdt);

  const double cont_acc =
      metrics::video_accuracy(score_run(cont, video, 0.5), 0.7);
  const double mpdt_acc =
      metrics::video_accuracy(score_run(pipeline, video, 0.5), 0.7);
  EXPECT_GT(cont_acc, mpdt_acc);                      // Table III: 0.89 vs 0.52
  EXPECT_GT(cont.energy.total_wh(), pipeline.energy.total_wh() * 5.0);
}

TEST(ContinuousBaseline, EnergyRailOrderingMatchesTableIII) {
  const video::SyntheticVideo video(scene(27, 120));
  DetectOnlyOptions options;
  options.setting = detect::ModelSetting::kYolov3_608;
  const RunResult run = run_continuous(video, options);
  // GPU dominates, then DDR, then CPU, then SoC (Table III column shape).
  EXPECT_GT(run.energy.gpu_wh, run.energy.ddr_wh);
  EXPECT_GT(run.energy.ddr_wh, run.energy.cpu_wh);
  EXPECT_GT(run.energy.cpu_wh, run.energy.soc_wh);
}

}  // namespace
}  // namespace adavp::core
