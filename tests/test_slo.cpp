#include <gtest/gtest.h>

#include <string>

#include "json_test_util.h"
#include "obs/slo.h"

namespace adavp::obs {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

// ----------------------------------------------------------------- spec

TEST(SloSpec, ParsesTheFullGrammar) {
  std::string error;
  const auto spec = SloSpec::parse(
      "fps=25 deadline_ms=40 miss_rate=0.1 coast_ratio=0.6 jitter_ms=15 "
      "min_fps_fraction=0.8 window_ms=500 breach_windows=3 recover_windows=4",
      &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_DOUBLE_EQ(spec->target_fps, 25.0);
  EXPECT_DOUBLE_EQ(spec->deadline_ms, 40.0);
  EXPECT_DOUBLE_EQ(spec->effective_deadline_ms(), 40.0);
  EXPECT_DOUBLE_EQ(spec->max_miss_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec->max_coast_ratio, 0.6);
  EXPECT_DOUBLE_EQ(spec->max_jitter_ms, 15.0);
  EXPECT_DOUBLE_EQ(spec->min_fps_fraction, 0.8);
  EXPECT_DOUBLE_EQ(spec->window_ms, 500.0);
  EXPECT_EQ(spec->breach_windows, 3);
  EXPECT_EQ(spec->recover_windows, 4);
}

TEST(SloSpec, EmptySpecYieldsDefaultsAndDerivedDeadline) {
  const auto spec = SloSpec::parse("");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->target_fps, 30.0);
  // deadline_ms=0 derives one frame period.
  EXPECT_NEAR(spec->effective_deadline_ms(), 1000.0 / 30.0, 1e-9);
}

TEST(SloSpec, RejectsMalformedSpecsWithDiagnostics) {
  std::string error;
  EXPECT_FALSE(SloSpec::parse("fps", &error).has_value());
  EXPECT_NE(error.find("key=value"), std::string::npos);
  EXPECT_FALSE(SloSpec::parse("fps=abc", &error).has_value());
  EXPECT_NE(error.find("bad number"), std::string::npos);
  EXPECT_FALSE(SloSpec::parse("fps=30x", &error).has_value());
  EXPECT_FALSE(SloSpec::parse("warp=9", &error).has_value());
  EXPECT_NE(error.find("unknown SLO key"), std::string::npos);
  EXPECT_FALSE(SloSpec::parse("fps=0", &error).has_value());
  EXPECT_FALSE(SloSpec::parse("window_ms=-5", &error).has_value());
  EXPECT_NE(error.find("positive"), std::string::npos);
}

// -------------------------------------------------------------- tracker

/// A 10 fps / 1 s window spec: deadline derives to 100 ms, fps floor to 9.
SloSpec spec_10fps() {
  SloSpec spec;
  spec.target_fps = 10.0;
  spec.window_ms = 1000.0;
  spec.max_miss_rate = 0.05;
  return spec;
}

/// Feeds `count` evenly spaced results into window `w` (gap = the expected
/// 100 ms, so jitter stays zero unless the caller perturbs times itself).
void feed_window(SloTracker& tracker, int w, int count, double latency_ms,
                 int coasted = 0) {
  for (int i = 0; i < count; ++i) {
    tracker.on_result(w * 1000.0 + i * 100.0, latency_ms, i < coasted);
  }
}

TEST(SloTracker, HealthyRunHasNoViolations) {
  SloTracker tracker(spec_10fps());
  for (int w = 0; w < 3; ++w) feed_window(tracker, w, 10, 50.0);
  const SloReport report = tracker.finish(3000.0);
  ASSERT_TRUE(report.evaluated);
  ASSERT_EQ(report.windows.size(), 3u);
  for (const auto& w : report.windows) {
    EXPECT_FALSE(w.violated) << "window " << w.index << ": " << w.violation;
    EXPECT_DOUBLE_EQ(w.fps, 10.0);
    EXPECT_DOUBLE_EQ(w.miss_rate, 0.0);
    EXPECT_DOUBLE_EQ(w.burn_rate, 0.0);
  }
  EXPECT_EQ(report.violated_windows, 0u);
  EXPECT_TRUE(report.breaches.empty());
  EXPECT_FALSE(report.in_breach_at_end);
}

TEST(SloTracker, DeadlineMissesViolateAndBurnTheBudget) {
  SloTracker tracker(spec_10fps());
  feed_window(tracker, 0, 10, 50.0);
  feed_window(tracker, 1, 10, 200.0);  // every result misses the 100 ms deadline
  const SloReport report = tracker.finish(2000.0);
  ASSERT_EQ(report.windows.size(), 2u);
  EXPECT_FALSE(report.windows[0].violated);
  const SloWindow& bad = report.windows[1];
  EXPECT_TRUE(bad.violated);
  EXPECT_EQ(bad.violation, "miss_rate");
  EXPECT_EQ(bad.deadline_misses, 10u);
  EXPECT_DOUBLE_EQ(bad.miss_rate, 1.0);
  // miss_rate 1.0 against a 0.05 budget burns 20x.
  EXPECT_DOUBLE_EQ(bad.burn_rate, 20.0);
  EXPECT_DOUBLE_EQ(bad.latency_p99_ms, 200.0);
}

TEST(SloTracker, CoastRatioViolation) {
  SloSpec spec = spec_10fps();
  spec.max_coast_ratio = 0.5;
  SloTracker tracker(spec);
  feed_window(tracker, 0, 10, 50.0, /*coasted=*/6);
  const SloReport report = tracker.finish(1000.0);
  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_TRUE(report.windows[0].violated);
  EXPECT_EQ(report.windows[0].violation, "coast_ratio");
  EXPECT_DOUBLE_EQ(report.windows[0].coast_ratio, 0.6);
}

TEST(SloTracker, JitterViolation) {
  SloSpec spec = spec_10fps();
  spec.max_jitter_ms = 20.0;
  SloTracker tracker(spec);
  // 10 results, but gaps alternate 140/60 ms — every jitter sample is 40 ms.
  for (int i = 0; i < 10; ++i) {
    tracker.on_result(i * 100.0 + (i % 2) * 40.0, 50.0, false);
  }
  const SloReport report = tracker.finish(1000.0);
  ASSERT_EQ(report.windows.size(), 1u);
  EXPECT_TRUE(report.windows[0].violated);
  EXPECT_EQ(report.windows[0].violation, "jitter");
  EXPECT_NEAR(report.windows[0].jitter_p99_ms, 40.0, 1e-9);
}

TEST(SloTracker, BreachRequiresConsecutiveViolatedWindows) {
  // breach_windows=2: one bad window is a blip, not a breach.
  SloTracker blip(spec_10fps());
  feed_window(blip, 0, 10, 200.0);  // violated
  feed_window(blip, 1, 10, 50.0);   // healthy
  feed_window(blip, 2, 10, 50.0);
  const SloReport blip_report = blip.finish(3000.0);
  EXPECT_EQ(blip_report.violated_windows, 1u);
  EXPECT_TRUE(blip_report.breaches.empty());

  SloTracker breach(spec_10fps());
  feed_window(breach, 0, 10, 200.0);
  feed_window(breach, 1, 10, 200.0);  // second consecutive => breach
  const SloReport breach_report = breach.finish(2000.0);
  ASSERT_EQ(breach_report.breaches.size(), 1u);
  EXPECT_TRUE(breach_report.breaches[0].entered);
  EXPECT_EQ(breach_report.breaches[0].window_index, 1);
  EXPECT_DOUBLE_EQ(breach_report.breaches[0].t_ms, 2000.0);
  EXPECT_EQ(breach_report.breaches[0].reason, "miss_rate");
  EXPECT_TRUE(breach_report.in_breach_at_end);
}

TEST(SloTracker, RecoveryRequiresConsecutiveHealthyWindows) {
  SloSpec spec = spec_10fps();
  spec.breach_windows = 1;
  spec.recover_windows = 2;
  SloTracker tracker(spec);
  feed_window(tracker, 0, 10, 200.0);  // breach enters immediately
  feed_window(tracker, 1, 10, 50.0);   // one healthy window is not enough
  feed_window(tracker, 2, 10, 50.0);   // second => recovered
  feed_window(tracker, 3, 10, 50.0);
  const SloReport report = tracker.finish(4000.0);
  ASSERT_EQ(report.breaches.size(), 2u);
  EXPECT_TRUE(report.breaches[0].entered);
  EXPECT_EQ(report.breaches[0].window_index, 0);
  EXPECT_FALSE(report.breaches[1].entered);
  EXPECT_EQ(report.breaches[1].window_index, 2);
  EXPECT_EQ(report.breaches[1].reason, "recovered");
  EXPECT_FALSE(report.in_breach_at_end);
}

TEST(SloTracker, StalledWindowsViolateTheFpsFloorWithBurn) {
  // Window 0 is healthy, then the pipeline goes silent until t=5s. The
  // empty windows 1..4 must be judged — fps 0 — not skipped, and the stall
  // must burn budget even though zero results missed their deadline.
  SloTracker tracker(spec_10fps());
  feed_window(tracker, 0, 10, 50.0);
  tracker.on_result(5000.0, 50.0, false);
  const SloReport report = tracker.finish(6000.0);
  ASSERT_EQ(report.windows.size(), 6u);
  for (int w = 1; w <= 4; ++w) {
    const SloWindow& stalled = report.windows[static_cast<std::size_t>(w)];
    EXPECT_TRUE(stalled.violated) << "window " << w;
    EXPECT_EQ(stalled.violation, "fps");
    EXPECT_DOUBLE_EQ(stalled.fps, 0.0);
    EXPECT_EQ(stalled.results, 0u);
    // Shortfall burn: 1 + (min_fps - 0) / min_fps = 2.
    EXPECT_DOUBLE_EQ(stalled.burn_rate, 2.0);
  }
  // The breach entered after two consecutive stalled windows.
  ASSERT_GE(report.breaches.size(), 1u);
  EXPECT_TRUE(report.breaches[0].entered);
  EXPECT_EQ(report.breaches[0].window_index, 2);
  EXPECT_EQ(report.breaches[0].reason, "fps");
  EXPECT_TRUE(report.in_breach_at_end);
}

TEST(SloTracker, FinishRollsThroughTrailingEmptyWindows) {
  SloTracker tracker(spec_10fps());
  feed_window(tracker, 0, 10, 50.0);
  // The run formally lasted 3 s: windows 1 and 2 were silent.
  const SloReport report = tracker.finish(3000.0);
  ASSERT_EQ(report.windows.size(), 3u);
  EXPECT_FALSE(report.windows[0].violated);
  EXPECT_TRUE(report.windows[1].violated);
  EXPECT_TRUE(report.windows[2].violated);
}

TEST(SloTracker, LateResultsAreDroppedNotRejudged) {
  SloTracker tracker(spec_10fps());
  feed_window(tracker, 0, 10, 50.0);
  feed_window(tracker, 1, 10, 50.0);  // window 0 is finalized here
  tracker.on_result(500.0, 200.0, false);  // late miss: window 0 already judged
  const SloReport report = tracker.finish(2000.0);
  ASSERT_EQ(report.windows.size(), 2u);
  EXPECT_EQ(report.windows[0].results, 10u);
  EXPECT_EQ(report.windows[0].deadline_misses, 0u);
}

TEST(SloTracker, SensorReadingTracksTheLatestCompletedWindow) {
  SloSpec spec = spec_10fps();
  spec.breach_windows = 1;
  SloTracker tracker(spec);
  EXPECT_FALSE(tracker.read().valid);  // nothing completed yet
  feed_window(tracker, 0, 10, 50.0);
  EXPECT_FALSE(tracker.read().valid);  // window 0 is still open
  feed_window(tracker, 1, 10, 200.0);  // rolling to window 1 completes 0
  SensorReading reading = tracker.read();
  ASSERT_TRUE(reading.valid);
  EXPECT_DOUBLE_EQ(reading.t_ms, 1000.0);
  EXPECT_DOUBLE_EQ(reading.fps, 10.0);
  EXPECT_FALSE(reading.in_breach);
  tracker.on_result(2000.0, 50.0, false);  // completes the violated window 1
  reading = tracker.read();
  EXPECT_DOUBLE_EQ(reading.miss_rate, 1.0);
  EXPECT_DOUBLE_EQ(reading.burn_rate, 20.0);
  EXPECT_TRUE(reading.in_breach);
}

TEST(SloTracker, NoResultsYieldsAnEmptyEvaluatedReport) {
  SloTracker tracker(spec_10fps());
  const SloReport report = tracker.finish(1000.0);
  EXPECT_TRUE(report.evaluated);
  EXPECT_TRUE(report.windows.empty());
  EXPECT_FALSE(report.in_breach_at_end);
}

// ----------------------------------------------------------------- json

TEST(SloReport, JsonParsesBackWithWindowsAndBreaches) {
  SloTracker tracker(spec_10fps());
  feed_window(tracker, 0, 10, 50.0);
  feed_window(tracker, 1, 10, 200.0);
  feed_window(tracker, 2, 10, 200.0);
  const SloReport report = tracker.finish(3000.0);

  JsonValue doc;
  ASSERT_TRUE(JsonParser(report.to_json()).parse(doc)) << report.to_json();
  EXPECT_TRUE(doc.get("evaluated")->boolean);
  EXPECT_DOUBLE_EQ(doc.get("spec")->get("fps")->number, 10.0);
  EXPECT_DOUBLE_EQ(doc.get("violated_windows")->number, 2.0);
  const JsonValue* windows = doc.get("windows");
  ASSERT_EQ(windows->array.size(), 3u);
  for (const char* key :
       {"index", "start_ms", "end_ms", "results", "deadline_misses", "coasted",
        "fps", "miss_rate", "coast_ratio", "jitter_p50_ms", "jitter_p99_ms",
        "latency_p99_ms", "burn_rate", "violated", "violation"}) {
    EXPECT_NE(windows->array[0].get(key), nullptr) << key;
  }
  const JsonValue* breaches = doc.get("breaches");
  ASSERT_EQ(breaches->array.size(), 1u);
  EXPECT_TRUE(breaches->array[0].get("entered")->boolean);
  EXPECT_EQ(breaches->array[0].get("reason")->str, "miss_rate");
  EXPECT_TRUE(doc.get("in_breach_at_end")->boolean);
}

}  // namespace
}  // namespace adavp::obs
