#include <gtest/gtest.h>

#include "metrics/accuracy.h"
#include "metrics/matching.h"

namespace adavp::metrics {
namespace {

using detect::Detection;
using video::GroundTruthObject;
using video::ObjectClass;

Detection det(float l, float t, float w, float h, ObjectClass cls) {
  return {{l, t, w, h}, cls, 0.9f};
}

GroundTruthObject gt(int id, float l, float t, float w, float h,
                     ObjectClass cls) {
  return {id, cls, {l, t, w, h}};
}

TEST(FrameScoreTest, PerfectMatch) {
  const std::vector<Detection> dets = {det(0, 0, 10, 10, ObjectClass::kCar)};
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  const FrameScore score = score_frame(dets, truth);
  EXPECT_EQ(score.true_positives, 1);
  EXPECT_EQ(score.false_positives, 0);
  EXPECT_EQ(score.false_negatives, 0);
  EXPECT_DOUBLE_EQ(score.f1(), 1.0);
}

TEST(FrameScoreTest, WrongLabelIsFpPlusFn) {
  const std::vector<Detection> dets = {det(0, 0, 10, 10, ObjectClass::kTruck)};
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  const FrameScore score = score_frame(dets, truth);
  EXPECT_EQ(score.true_positives, 0);
  EXPECT_EQ(score.false_positives, 1);
  EXPECT_EQ(score.false_negatives, 1);
  EXPECT_DOUBLE_EQ(score.f1(), 0.0);
}

TEST(FrameScoreTest, InsufficientOverlapFails) {
  // IoU of unit squares shifted by 0.6 of the side = 0.4/1.6 = 0.25 < 0.5.
  const std::vector<Detection> dets = {det(6, 0, 10, 10, ObjectClass::kCar)};
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  const FrameScore score = score_frame(dets, truth, 0.5);
  EXPECT_EQ(score.true_positives, 0);
}

TEST(FrameScoreTest, IouThresholdIsRespected) {
  // Shift 2 px of 10: IoU = 8/12 = 0.667.
  const std::vector<Detection> dets = {det(2, 0, 10, 10, ObjectClass::kCar)};
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  EXPECT_EQ(score_frame(dets, truth, 0.5).true_positives, 1);
  EXPECT_EQ(score_frame(dets, truth, 0.7).true_positives, 0);
}

TEST(FrameScoreTest, GreedyMatchingPrefersBestIou) {
  // Two detections compete for one ground truth; the closer one wins, the
  // other counts as a false positive.
  const std::vector<Detection> dets = {
      det(1, 0, 10, 10, ObjectClass::kCar),  // IoU ~0.82
      det(3, 0, 10, 10, ObjectClass::kCar),  // IoU ~0.54
  };
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  const FrameScore score = score_frame(dets, truth);
  EXPECT_EQ(score.true_positives, 1);
  EXPECT_EQ(score.false_positives, 1);
  EXPECT_EQ(score.false_negatives, 0);
}

TEST(FrameScoreTest, EachGtMatchedOnce) {
  const std::vector<Detection> dets = {
      det(0, 0, 10, 10, ObjectClass::kCar),
      det(0, 0, 10, 10, ObjectClass::kCar),
  };
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  const FrameScore score = score_frame(dets, truth);
  EXPECT_EQ(score.true_positives, 1);
  EXPECT_EQ(score.false_positives, 1);
}

TEST(FrameScoreTest, MultiObjectMixedOutcome) {
  const std::vector<Detection> dets = {
      det(0, 0, 10, 10, ObjectClass::kCar),      // TP
      det(50, 50, 10, 10, ObjectClass::kTruck),  // TP
      det(90, 90, 8, 8, ObjectClass::kDog),      // FP (nothing there)
  };
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar),
      gt(1, 50, 50, 10, 10, ObjectClass::kTruck),
      gt(2, 120, 20, 10, 10, ObjectClass::kPerson),  // FN (missed)
  };
  const FrameScore score = score_frame(dets, truth);
  EXPECT_EQ(score.true_positives, 2);
  EXPECT_EQ(score.false_positives, 1);
  EXPECT_EQ(score.false_negatives, 1);
  EXPECT_DOUBLE_EQ(score.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(score.recall(), 2.0 / 3.0);
  EXPECT_NEAR(score.f1(), 2.0 / 3.0, 1e-12);
}

TEST(FrameScoreTest, EmptyFrameEmptyDetectionsIsPerfect) {
  const FrameScore score = score_frame({}, {});
  EXPECT_DOUBLE_EQ(score.f1(), 1.0);
  EXPECT_DOUBLE_EQ(score.precision(), 0.0);  // no detections
}

TEST(FrameScoreTest, DetectionsOnEmptyFrameScoreZero) {
  const std::vector<Detection> dets = {det(0, 0, 10, 10, ObjectClass::kCar)};
  EXPECT_DOUBLE_EQ(score_frame(dets, {}).f1(), 0.0);
}

TEST(FrameScoreTest, MissingAllObjectsScoresZero) {
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  EXPECT_DOUBLE_EQ(score_frame({}, truth).f1(), 0.0);
}

TEST(ScoreBoxesTest, MatchesDetectionOverload) {
  const std::vector<LabeledBox> boxes = {{{0, 0, 10, 10}, ObjectClass::kCar}};
  const std::vector<GroundTruthObject> truth = {
      gt(0, 0, 0, 10, 10, ObjectClass::kCar)};
  EXPECT_DOUBLE_EQ(score_boxes(boxes, truth).f1(), 1.0);
}

// ------------------------------------------------------------ Accuracy ---

TEST(VideoAccuracy, CountsFramesAboveThreshold) {
  const std::vector<double> f1 = {0.9, 0.8, 0.6, 0.71, 0.2};
  EXPECT_DOUBLE_EQ(video_accuracy(f1, 0.7), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(video_accuracy(f1, 0.75), 2.0 / 5.0);
}

TEST(VideoAccuracy, EmptyIsZero) { EXPECT_DOUBLE_EQ(video_accuracy({}, 0.7), 0.0); }

TEST(VideoAccuracy, ThresholdIsInclusive) {
  const std::vector<double> f1 = {0.7};
  EXPECT_DOUBLE_EQ(video_accuracy(f1, 0.7), 1.0);
}

TEST(DatasetAccuracy, AveragesPerVideo) {
  const std::vector<std::vector<double>> videos = {
      {1.0, 1.0},        // accuracy 1.0
      {0.0, 0.0, 0.0},   // accuracy 0.0
  };
  EXPECT_DOUBLE_EQ(dataset_accuracy(videos, 0.7), 0.5);
}

TEST(RelativeGain, MatchesPaperConvention) {
  // "improves accuracy by 43.9%": (ours - base) / base.
  EXPECT_NEAR(relative_gain(0.59, 0.41), 0.439, 0.001);
  EXPECT_DOUBLE_EQ(relative_gain(0.5, 0.0), 0.0);
}

}  // namespace
}  // namespace adavp::metrics
